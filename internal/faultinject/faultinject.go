// Package faultinject is a deterministic fault-injection framework for the
// crash-recovery and robustness tests. Mutation paths across the stack —
// SCM flushes, journal append/commit/checkpoint, TFS validation/apply,
// libFS staging, and the RPC transports — are threaded with named fault
// points. A test arms an Injector with rules that fire at a chosen hit of a
// point (the Nth time that point is reached, or the Nth fault-point hit
// overall) and inject one of three faults:
//
//   - an error, returned to the caller as if the operation failed,
//   - a delay, stretching the window of in-flight state that races and
//     lease expiry must tolerate,
//   - a crash, unwinding the simulated process at exactly that instant
//     (a panic with a Crash value that Run recovers), after which the
//     harness discards the volatile image and drives recovery.
//
// Every hit is counted whether or not a rule fires, so a fault-free
// baseline run doubles as an enumeration of all crash ordinals: the
// crash-sweep harness (internal/crashsweep) replays the same workload once
// per ordinal, crashing at each in turn.
//
// A nil *Injector is valid and inert: production paths carry a nil field
// and pay one pointer comparison per fault point.
package faultinject

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// ErrInjected is the default error returned by error-kind rules.
var ErrInjected = errors.New("faultinject: injected fault")

// Crash is the panic value thrown when a crash rule fires. The harness
// recovers it with Run, then simulates the consequences (drop the volatile
// image, expire leases, disconnect the session) and drives recovery.
type Crash struct {
	// Point is the fault point that crashed.
	Point string
	// Seq is the global fault-point hit ordinal at which the crash fired.
	Seq uint64
	// PointHit is the per-point hit ordinal.
	PointHit uint64
}

func (c Crash) Error() string {
	return fmt.Sprintf("faultinject: crash at %s (hit %d, global %d)", c.Point, c.PointHit, c.Seq)
}

// Kind selects what a rule injects when it fires.
type Kind uint8

// Rule kinds.
const (
	// KindError makes Hit return the rule's error. Fault points on paths
	// without an error return (e.g. BFlush) ignore it.
	KindError Kind = iota
	// KindDelay makes Hit sleep for the rule's duration.
	KindDelay
	// KindCrash makes Hit panic with a Crash value.
	KindCrash
	// KindKill makes Hit terminate the whole process with SIGKILL — the
	// real thing, not a simulation. Nothing deferred runs, no flag is
	// cleared, no buffer is flushed. The process-level crash sweep arms
	// this in a child process and verifies recovery from its corpse.
	KindKill
)

type rule struct {
	kind  Kind
	point string // "" matches every point (global-ordinal rules)
	at    uint64 // ordinal to fire at; 0 = every hit
	prob  float64
	err   error
	delay time.Duration
}

// Injector counts fault-point hits and fires armed rules. All methods are
// safe for concurrent use; a nil Injector is valid and never fires.
type Injector struct {
	disabled atomic.Bool

	mu     sync.Mutex
	seq    uint64
	counts map[string]uint64
	trace  []string
	record bool
	rules  []rule
	rng    *rand.Rand
	sleep  func(time.Duration)
	kill   func() // overrides SIGKILL-self for unit tests
}

// New returns an empty injector: all points counted, no rules armed.
func New() *Injector {
	return &Injector{counts: make(map[string]uint64), sleep: time.Sleep}
}

// Hit reports that execution reached the named fault point. It returns a
// non-nil error when an error rule fires, sleeps when a delay rule fires,
// and panics with a Crash when a crash rule fires. On a nil or disabled
// injector it returns nil without counting.
func (i *Injector) Hit(point string) error {
	if i == nil || i.disabled.Load() {
		return nil
	}
	i.mu.Lock()
	i.seq++
	seq := i.seq
	i.counts[point]++
	cnt := i.counts[point]
	if i.record {
		i.trace = append(i.trace, point)
	}
	var fired *rule
	for idx := range i.rules {
		r := &i.rules[idx]
		if r.point != "" && r.point != point {
			continue
		}
		ord := cnt
		if r.point == "" {
			ord = seq
		}
		if r.at != 0 && ord != r.at {
			continue
		}
		if r.prob > 0 && (i.rng == nil || i.rng.Float64() >= r.prob) {
			continue
		}
		fired = r
		break
	}
	if fired == nil {
		i.mu.Unlock()
		return nil
	}
	kind, err, delay := fired.kind, fired.err, fired.delay
	sleep, kill := i.sleep, i.kill
	i.mu.Unlock()
	switch kind {
	case KindDelay:
		sleep(delay)
		return nil
	case KindError:
		if err == nil {
			err = ErrInjected
		}
		return fmt.Errorf("%w at %s", err, point)
	case KindCrash:
		panic(Crash{Point: point, Seq: seq, PointHit: cnt})
	case KindKill:
		if kill == nil {
			kill = killSelf
		}
		kill()
	}
	return nil
}

// FailAt arms an error rule: the nth hit of point returns err (every hit
// when n is 0; ErrInjected when err is nil).
func (i *Injector) FailAt(point string, n uint64, err error) {
	i.mu.Lock()
	i.rules = append(i.rules, rule{kind: KindError, point: point, at: n, err: err})
	i.mu.Unlock()
}

// DelayAt arms a delay rule: the nth hit of point sleeps d (every hit when
// n is 0).
func (i *Injector) DelayAt(point string, n uint64, d time.Duration) {
	i.mu.Lock()
	i.rules = append(i.rules, rule{kind: KindDelay, point: point, at: n, delay: d})
	i.mu.Unlock()
}

// CrashAt arms a crash rule: the nth hit of point panics with a Crash.
func (i *Injector) CrashAt(point string, n uint64) {
	i.mu.Lock()
	i.rules = append(i.rules, rule{kind: KindCrash, point: point, at: n})
	i.mu.Unlock()
}

// KillAt arms a kill rule: the nth hit of point SIGKILLs the process. This
// is for child processes of the crash sweep — there is no recovering from
// it in-process.
func (i *Injector) KillAt(point string, n uint64) {
	i.mu.Lock()
	i.rules = append(i.rules, rule{kind: KindKill, point: point, at: n})
	i.mu.Unlock()
}

// SetKillFn replaces the SIGKILL with fn (unit tests of the kill plumbing).
func (i *Injector) SetKillFn(fn func()) {
	i.mu.Lock()
	i.kill = fn
	i.mu.Unlock()
}

// CrashAtGlobal arms a crash at the nth fault-point hit overall, whatever
// point that turns out to be.
func (i *Injector) CrashAtGlobal(n uint64) {
	i.mu.Lock()
	i.rules = append(i.rules, rule{kind: KindCrash, at: n})
	i.mu.Unlock()
}

// SeedDelays arms a seeded random-delay schedule: each hit of each point
// sleeps a duration in [0, max) with probability p. The firing pattern and
// durations are drawn from one seeded stream under the injector lock, so a
// given seed yields the same schedule for the same hit sequence; used to
// shake out interleavings in -race stress tests.
func (i *Injector) SeedDelays(seed int64, p float64, max time.Duration) {
	i.mu.Lock()
	rng := rand.New(rand.NewSource(seed))
	i.rng = rng
	i.sleep = func(time.Duration) {
		i.mu.Lock()
		d := time.Duration(rng.Int63n(int64(max)))
		i.mu.Unlock()
		time.Sleep(d)
	}
	i.rules = append(i.rules, rule{kind: KindDelay, prob: p})
	i.mu.Unlock()
}

// Disable turns the injector off: hits stop counting and rules stop firing.
// The crash-sweep harness disables injection before driving recovery so the
// recovery path runs fault-free.
func (i *Injector) Disable() {
	if i != nil {
		i.disabled.Store(true)
	}
}

// Enable turns a disabled injector back on.
func (i *Injector) Enable() {
	if i != nil {
		i.disabled.Store(false)
	}
}

// ClearRules disarms all rules, keeping counters.
func (i *Injector) ClearRules() {
	i.mu.Lock()
	i.rules = nil
	i.mu.Unlock()
}

// Record starts appending every hit's point name to the trace.
func (i *Injector) Record() {
	i.mu.Lock()
	i.record = true
	i.mu.Unlock()
}

// Trace returns a copy of the recorded hit sequence.
func (i *Injector) Trace() []string {
	i.mu.Lock()
	defer i.mu.Unlock()
	return append([]string(nil), i.trace...)
}

// TotalHits returns the global hit count.
func (i *Injector) TotalHits() uint64 {
	if i == nil {
		return 0
	}
	i.mu.Lock()
	defer i.mu.Unlock()
	return i.seq
}

// Counts returns a copy of the per-point hit counts.
func (i *Injector) Counts() map[string]uint64 {
	i.mu.Lock()
	defer i.mu.Unlock()
	out := make(map[string]uint64, len(i.counts))
	for k, v := range i.counts {
		out[k] = v
	}
	return out
}

// Points returns the sorted names of every point hit so far.
func (i *Injector) Points() []string {
	i.mu.Lock()
	defer i.mu.Unlock()
	out := make([]string, 0, len(i.counts))
	for k := range i.counts {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// Run executes fn, recovering a crash-rule panic into a *Crash. Other
// panics propagate. The returned error is fn's error when no crash fired.
func Run(fn func() error) (crash *Crash, err error) {
	defer func() {
		if r := recover(); r != nil {
			if c, ok := r.(Crash); ok {
				crash = &c
				return
			}
			panic(r)
		}
	}()
	return nil, fn()
}
