package wire

import (
	"bytes"
	"testing"
	"testing/quick"
)

func TestRoundTripAllTypes(t *testing.T) {
	w := NewWriter(64)
	w.U8(0xab)
	w.U16(0xbeef)
	w.U32(0xdeadbeef)
	w.U64(0x0123456789abcdef)
	w.I64(-42)
	w.Bool(true)
	w.Bool(false)
	w.Bytes32([]byte("payload"))
	w.String("name")

	r := NewReader(w.Bytes())
	if v := r.U8(); v != 0xab {
		t.Errorf("u8 = %#x", v)
	}
	if v := r.U16(); v != 0xbeef {
		t.Errorf("u16 = %#x", v)
	}
	if v := r.U32(); v != 0xdeadbeef {
		t.Errorf("u32 = %#x", v)
	}
	if v := r.U64(); v != 0x0123456789abcdef {
		t.Errorf("u64 = %#x", v)
	}
	if v := r.I64(); v != -42 {
		t.Errorf("i64 = %d", v)
	}
	if !r.Bool() || r.Bool() {
		t.Error("bools wrong")
	}
	if v := r.Bytes32(); !bytes.Equal(v, []byte("payload")) {
		t.Errorf("bytes = %q", v)
	}
	if v := r.Str(); v != "name" {
		t.Errorf("string = %q", v)
	}
	if err := r.Finish(); err != nil {
		t.Fatal(err)
	}
}

func TestTruncatedMessageSticksError(t *testing.T) {
	w := NewWriter(8)
	w.U32(7)
	r := NewReader(w.Bytes()[:2])
	if r.U32() != 0 {
		t.Error("truncated u32 should be zero")
	}
	if r.Err() == nil {
		t.Fatal("want error")
	}
	// Subsequent reads stay zero and don't panic.
	if r.U64() != 0 || r.Str() != "" {
		t.Error("reads after error should return zero values")
	}
	if r.Finish() == nil {
		t.Error("Finish should report the sticky error")
	}
}

func TestHostileLengthPrefixRejected(t *testing.T) {
	w := NewWriter(8)
	w.U32(0xffffffff) // absurd length prefix with no body
	r := NewReader(w.Bytes())
	if r.Bytes32() != nil {
		t.Fatal("want nil for hostile length")
	}
	if r.Err() == nil {
		t.Fatal("want error")
	}
}

func TestTrailingBytesDetected(t *testing.T) {
	w := NewWriter(8)
	w.U32(1)
	w.U8(9)
	r := NewReader(w.Bytes())
	_ = r.U32()
	if err := r.Finish(); err == nil {
		t.Fatal("want trailing-bytes error")
	}
}

func TestWriterReset(t *testing.T) {
	w := NewWriter(8)
	w.U64(1)
	w.Reset()
	if w.Len() != 0 {
		t.Fatal("reset did not clear")
	}
	w.U8(5)
	if w.Len() != 1 {
		t.Fatal("writer unusable after reset")
	}
}

func TestQuickScalarAndBytesRoundTrip(t *testing.T) {
	f := func(a uint64, b uint32, c uint16, d uint8, s []byte, str string, flag bool) bool {
		w := NewWriter(32)
		w.U64(a)
		w.U32(b)
		w.U16(c)
		w.U8(d)
		w.Bytes32(s)
		w.String(str)
		w.Bool(flag)
		r := NewReader(w.Bytes())
		ok := r.U64() == a && r.U32() == b && r.U16() == c && r.U8() == d &&
			bytes.Equal(r.Bytes32(), s) && r.Str() == str && r.Bool() == flag
		return ok && r.Finish() == nil
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: a reader over any random byte soup never panics and always
// terminates with a defined state.
func TestQuickReaderNeverPanics(t *testing.T) {
	f := func(soup []byte) bool {
		r := NewReader(soup)
		for i := 0; i < 16; i++ {
			switch i % 5 {
			case 0:
				r.U64()
			case 1:
				r.Bytes32()
			case 2:
				r.U8()
			case 3:
				r.Str()
			case 4:
				r.U32()
			}
		}
		_ = r.Finish()
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
