package wire

import "testing"

// FuzzReader drives a Reader through an arbitrary sequence of typed reads
// against arbitrary bytes. The first part of the input is interpreted as a
// read script (one op per byte), the rest as the message. Invariants: no
// read panics, Remaining never goes negative, the error is sticky (once set
// it never clears and later reads return zero values), and Finish rejects
// any message with leftover bytes.
func FuzzReader(f *testing.F) {
	// A well-formed message matching its script.
	w := NewWriter(64)
	w.U8(7)
	w.U16(512)
	w.U32(1 << 20)
	w.U64(1 << 40)
	w.Bool(true)
	w.Bytes32([]byte("payload"))
	w.String("name")
	f.Add([]byte{0, 1, 2, 3, 4, 5, 6}, w.Bytes())
	f.Add([]byte{3, 3, 3}, []byte{1, 2})       // underflow
	f.Add([]byte{5}, []byte{0xff, 0xff, 0xff, 0x7f}) // hostile length prefix
	f.Add([]byte{}, []byte("trailing"))
	f.Fuzz(func(t *testing.T, script, msg []byte) {
		r := NewReader(msg)
		for _, op := range script {
			hadErr := r.Err() != nil
			var zero bool
			switch op % 7 {
			case 0:
				zero = r.U8() == 0
			case 1:
				zero = r.U16() == 0
			case 2:
				zero = r.U32() == 0
			case 3:
				zero = r.U64() == 0
			case 4:
				zero = !r.Bool()
			case 5:
				zero = r.Bytes32() == nil
			case 6:
				zero = r.Str() == ""
			}
			if r.Remaining() < 0 {
				t.Fatalf("Remaining went negative: %d", r.Remaining())
			}
			if hadErr {
				if r.Err() == nil {
					t.Fatal("sticky error cleared by a later read")
				}
				if !zero {
					t.Fatal("read after error returned a non-zero value")
				}
			}
		}
		err := r.Finish()
		if r.Err() == nil && r.Remaining() > 0 && err == nil {
			t.Fatalf("Finish accepted %d trailing bytes", r.Remaining())
		}
		if r.Err() != nil && err == nil {
			t.Fatal("Finish cleared a decode error")
		}
	})
}

// FuzzWriterReaderRoundTrip checks that anything the Writer produces for a
// (value, string) pair decodes back exactly.
func FuzzWriterReaderRoundTrip(f *testing.F) {
	f.Add(uint64(0), "")
	f.Add(uint64(1<<63), "hello")
	f.Add(uint64(42), string([]byte{0, 0xff, 0x80}))
	f.Fuzz(func(t *testing.T, v uint64, s string) {
		w := NewWriter(16)
		w.U64(v)
		w.String(s)
		w.Bool(len(s)%2 == 0)
		r := NewReader(w.Bytes())
		if got := r.U64(); got != v {
			t.Fatalf("u64: %d != %d", got, v)
		}
		if got := r.Str(); got != s {
			t.Fatalf("str: %q != %q", got, s)
		}
		if got := r.Bool(); got != (len(s)%2 == 0) {
			t.Fatalf("bool mismatch")
		}
		if err := r.Finish(); err != nil {
			t.Fatalf("finish: %v", err)
		}
	})
}
