// Package wire provides the little-endian binary encoding used for RPC
// payloads, client metadata-update logs, and journal records. The format is
// deliberately simple: fixed-width scalars plus length-prefixed byte strings,
// with a cursor-based reader that fails softly so untrusted client messages
// can be validated without panics.
package wire

import (
	"errors"
	"fmt"
)

// ErrTruncated reports a read past the end of a message.
var ErrTruncated = errors.New("wire: truncated message")

// MaxBytesLen bounds a single length-prefixed byte string, protecting the
// trusted service from hostile length fields.
const MaxBytesLen = 1 << 26 // 64 MiB

// Writer appends encoded values to a byte slice.
type Writer struct {
	buf []byte
}

// NewWriter returns a writer with the given initial capacity.
func NewWriter(capacity int) *Writer {
	return &Writer{buf: make([]byte, 0, capacity)}
}

// Bytes returns the encoded message. The slice aliases the writer's buffer.
func (w *Writer) Bytes() []byte { return w.buf }

// Len returns the number of encoded bytes.
func (w *Writer) Len() int { return len(w.buf) }

// Reset clears the writer, retaining its buffer.
func (w *Writer) Reset() { w.buf = w.buf[:0] }

// U8 appends a byte.
func (w *Writer) U8(v uint8) { w.buf = append(w.buf, v) }

// U16 appends a little-endian uint16.
func (w *Writer) U16(v uint16) { w.buf = append(w.buf, byte(v), byte(v>>8)) }

// U32 appends a little-endian uint32.
func (w *Writer) U32(v uint32) {
	w.buf = append(w.buf, byte(v), byte(v>>8), byte(v>>16), byte(v>>24))
}

// U64 appends a little-endian uint64.
func (w *Writer) U64(v uint64) {
	w.buf = append(w.buf,
		byte(v), byte(v>>8), byte(v>>16), byte(v>>24),
		byte(v>>32), byte(v>>40), byte(v>>48), byte(v>>56))
}

// I64 appends a little-endian int64.
func (w *Writer) I64(v int64) { w.U64(uint64(v)) }

// Bool appends a boolean as one byte.
func (w *Writer) Bool(v bool) {
	if v {
		w.U8(1)
	} else {
		w.U8(0)
	}
}

// Bytes32 appends a uint32 length prefix followed by p.
func (w *Writer) Bytes32(p []byte) {
	w.U32(uint32(len(p)))
	w.buf = append(w.buf, p...)
}

// String appends a length-prefixed string.
func (w *Writer) String(s string) {
	w.U32(uint32(len(s)))
	w.buf = append(w.buf, s...)
}

// Reader decodes values sequentially from a message. The first decoding
// error sticks: all subsequent reads return zero values, and Err reports it.
// This lets decoders run a straight-line sequence of reads and check the
// error once.
type Reader struct {
	buf []byte
	off int
	err error
}

// NewReader returns a reader over msg.
func NewReader(msg []byte) *Reader { return &Reader{buf: msg} }

// Err returns the first decoding error, if any.
func (r *Reader) Err() error { return r.err }

// Remaining returns the number of unread bytes.
func (r *Reader) Remaining() int { return len(r.buf) - r.off }

func (r *Reader) fail(what string) {
	if r.err == nil {
		r.err = fmt.Errorf("%w: reading %s at offset %d of %d", ErrTruncated, what, r.off, len(r.buf))
	}
}

func (r *Reader) take(n int, what string) []byte {
	if r.err != nil {
		return nil
	}
	if n < 0 || r.off+n > len(r.buf) {
		r.fail(what)
		return nil
	}
	b := r.buf[r.off : r.off+n]
	r.off += n
	return b
}

// U8 decodes a byte.
func (r *Reader) U8() uint8 {
	b := r.take(1, "u8")
	if b == nil {
		return 0
	}
	return b[0]
}

// U16 decodes a little-endian uint16.
func (r *Reader) U16() uint16 {
	b := r.take(2, "u16")
	if b == nil {
		return 0
	}
	return uint16(b[0]) | uint16(b[1])<<8
}

// U32 decodes a little-endian uint32.
func (r *Reader) U32() uint32 {
	b := r.take(4, "u32")
	if b == nil {
		return 0
	}
	return uint32(b[0]) | uint32(b[1])<<8 | uint32(b[2])<<16 | uint32(b[3])<<24
}

// U64 decodes a little-endian uint64.
func (r *Reader) U64() uint64 {
	b := r.take(8, "u64")
	if b == nil {
		return 0
	}
	return uint64(b[0]) | uint64(b[1])<<8 | uint64(b[2])<<16 | uint64(b[3])<<24 |
		uint64(b[4])<<32 | uint64(b[5])<<40 | uint64(b[6])<<48 | uint64(b[7])<<56
}

// I64 decodes a little-endian int64.
func (r *Reader) I64() int64 { return int64(r.U64()) }

// Bool decodes a boolean byte.
func (r *Reader) Bool() bool { return r.U8() != 0 }

// Bytes32 decodes a length-prefixed byte string. The result aliases the
// message buffer.
func (r *Reader) Bytes32() []byte {
	n := r.U32()
	if r.err != nil {
		return nil
	}
	if n > MaxBytesLen {
		r.fail(fmt.Sprintf("bytes32 length %d", n))
		return nil
	}
	return r.take(int(n), "bytes32 body")
}

// Str decodes a length-prefixed string. (Named Str, not String, so a Reader
// is not accidentally a fmt.Stringer that consumes its own buffer.)
func (r *Reader) Str() string { return string(r.Bytes32()) }

// Finish verifies the entire message was consumed and returns any error.
func (r *Reader) Finish() error {
	if r.err != nil {
		return r.err
	}
	if r.off != len(r.buf) {
		return fmt.Errorf("wire: %d trailing bytes", len(r.buf)-r.off)
	}
	return nil
}
