package fsproto

import (
	"bytes"
	"reflect"
	"testing"
	"testing/quick"

	"github.com/aerie-fs/aerie/internal/sobj"
)

func TestOpsRoundTrip(t *testing.T) {
	ops := []Op{
		{Code: OpCreateObject, Target: 0x1000 | sobj.OID(sobj.TypeMFile)},
		{Code: OpInsert, Target: 0x2000 | sobj.OID(sobj.TypeCollection),
			Child: 0x1000 | sobj.OID(sobj.TypeMFile), Key: []byte("name"), CoverLock: 7, Val: 1},
		{Code: OpRename, Target: 0x2000, Dir2: 0x3000, Child: 0x1000,
			Key: []byte("old"), Key2: []byte("new"), CoverLock: 1, Cover2: 2},
		{Code: OpAttachExtent, Target: 0x1000, Val: 42, Val2: 0x9000, CoverLock: 3,
			Key: []byte("bucket-bound")},
	}
	got, err := DecodeOps(EncodeOps(ops))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(ops) {
		t.Fatalf("decoded %d ops", len(got))
	}
	for i := range ops {
		a, b := ops[i], got[i]
		if a.Code != b.Code || a.Target != b.Target || a.Child != b.Child ||
			!bytes.Equal(a.Key, b.Key) || !bytes.Equal(a.Key2, b.Key2) ||
			a.Dir2 != b.Dir2 || a.Val != b.Val || a.Val2 != b.Val2 ||
			a.CoverLock != b.CoverLock || a.Cover2 != b.Cover2 {
			t.Fatalf("op %d: %+v != %+v", i, a, b)
		}
	}
}

func TestDecodeRejectsBadOps(t *testing.T) {
	// Unknown opcode.
	bad := EncodeOps([]Op{{Code: 200}})
	if _, err := DecodeOps(bad); err == nil {
		t.Fatal("unknown opcode accepted")
	}
	// Truncated payload.
	good := EncodeOps([]Op{{Code: OpInsert, Key: []byte("k")}})
	if _, err := DecodeOps(good[:len(good)-3]); err == nil {
		t.Fatal("truncated batch accepted")
	}
	// Hostile count.
	if _, err := DecodeOps([]byte{0xff, 0xff, 0xff, 0x7f}); err == nil {
		t.Fatal("hostile count accepted")
	}
}

func TestMountReplyRoundTrip(t *testing.T) {
	m := MountReply{Root: 0x4001, HeapStart: 1 << 20, HeapSize: 7 << 20, Partition: 2, VolumeGID: 100,
		RoutingEpoch: 1, Shards: []ShardInfo{
			{Root: 0x4001, HeapStart: 1 << 20, HeapSize: 7 << 20, Partition: 2},
			{Root: 0x9001, HeapStart: 9 << 20, HeapSize: 7 << 20, Partition: 3},
		}}
	got, err := DecodeMountReply(EncodeMountReply(&m))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, m) {
		t.Fatalf("%+v != %+v", got, m)
	}
}

func TestStatfsReplyShardRows(t *testing.T) {
	m := StatfsReply{TotalBytes: 100, FreeBytes: 60, ReservedBytes: 10, Objects: 5, BatchesApplied: 9,
		Shards: []ShardStat{{TotalBytes: 50, FreeBytes: 30, Objects: 2, BatchesApplied: 4},
			{TotalBytes: 50, FreeBytes: 30, ReservedBytes: 10, Objects: 3, BatchesApplied: 5}}}
	got, err := DecodeStatfsReply(EncodeStatfsReply(&m))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, m) {
		t.Fatalf("%+v != %+v", got, m)
	}
}

func TestPreallocAndAddrsRoundTrip(t *testing.T) {
	q := PreallocRequest{Size: 8192, Count: 17}
	got, err := DecodePrealloc(EncodePrealloc(q))
	if err != nil || got != q {
		t.Fatalf("%+v %v", got, err)
	}
	addrs := []uint64{1, 4096, 1 << 40}
	back, err := DecodeAddrs(EncodeAddrs(addrs))
	if err != nil || len(back) != 3 || back[2] != 1<<40 {
		t.Fatalf("%v %v", back, err)
	}
}

// Property: decoding never panics on arbitrary input.
func TestQuickDecodeNeverPanics(t *testing.T) {
	f := func(soup []byte) bool {
		_, _ = DecodeOps(soup)
		_, _ = DecodeMountReply(soup)
		_, _ = DecodePrealloc(soup)
		_, _ = DecodeAddrs(soup)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
