package fsproto

import (
	"bytes"
	"reflect"
	"testing"
)

// FuzzDecodeOps throws arbitrary bytes at the batch decoder. The TFS runs
// this decoder on every ApplyLog payload a client ships, so it must never
// panic, and anything it accepts must survive a re-encode/re-decode round
// trip unchanged (otherwise the validated batch and the applied batch could
// differ).
func FuzzDecodeOps(f *testing.F) {
	f.Add([]byte{})
	f.Add(EncodeOps(nil))
	f.Add(EncodeOps([]Op{{Code: OpInsert, Target: 0x4001, Child: 0x8002, Key: []byte("file.txt"), CoverLock: 7}}))
	f.Add(EncodeOps([]Op{
		{Code: OpCreateObject, Target: 0x4001},
		{Code: OpRename, Target: 0x4001, Child: 0x8002, Key: []byte("a"), Key2: []byte("b"), Dir2: 0x4003, CoverLock: 1, Cover2: 2},
		{Code: OpTruncate, Target: 0x8002, Val: 4096},
	}))
	f.Add([]byte{0xff, 0xff, 0xff, 0x7f}) // hostile count
	f.Fuzz(func(t *testing.T, data []byte) {
		ops, err := DecodeOps(data)
		if err != nil {
			return
		}
		back := EncodeOps(ops)
		ops2, err := DecodeOps(back)
		if err != nil {
			t.Fatalf("re-decode of accepted batch failed: %v", err)
		}
		if len(ops) != len(ops2) {
			t.Fatalf("round trip changed op count: %d -> %d", len(ops), len(ops2))
		}
		for i := range ops {
			a, b := ops[i], ops2[i]
			if a.Code != b.Code || a.Target != b.Target || a.Child != b.Child ||
				!bytes.Equal(a.Key, b.Key) || !bytes.Equal(a.Key2, b.Key2) ||
				a.Dir2 != b.Dir2 || a.Val != b.Val || a.Val2 != b.Val2 ||
				a.CoverLock != b.CoverLock || a.Cover2 != b.Cover2 {
				t.Fatalf("round trip changed op %d: %+v -> %+v", i, a, b)
			}
		}
	})
}

// FuzzSeqHeader throws arbitrary bytes at the completion-window header
// decoder. Every pipelined batch a client ships arrives through this path,
// and the header decides sequencing, epoch filtering, and fragment
// reassembly — a misparse here reorders or replays batches. Accepted
// payloads must round-trip exactly: same header fields, same inner ops
// bytes, and the re-encoding must reproduce the canonical 13-byte prefix
// (unknown flag bits are dropped, which is the one legal difference).
func FuzzSeqHeader(f *testing.F) {
	f.Add([]byte{})
	f.Add(EncodeApplyLogSeq(SeqHeader{Seq: 1, Epoch: 0}, EncodeOps(nil)))
	f.Add(EncodeApplyLogSeq(SeqHeader{Seq: 1<<40 + 7, Epoch: 3, Frag: true}, []byte{0xde, 0xad}))
	f.Add(EncodeApplyLogSeq(SeqHeader{Seq: ^uint64(0), Epoch: ^uint32(0), Opener: true},
		EncodeOps([]Op{{Code: OpTruncate, Target: 0x8002, Val: 4096}})))
	f.Add([]byte{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12}) // one byte short of a header
	f.Fuzz(func(t *testing.T, data []byte) {
		h, ops, err := DecodeApplyLogSeq(data)
		if err != nil {
			if len(data) >= 13 {
				t.Fatalf("%d-byte payload rejected: %v", len(data), err)
			}
			return
		}
		if len(data) < 13 {
			t.Fatalf("short payload (%d bytes) accepted", len(data))
		}
		if !bytes.Equal(ops, data[13:]) {
			t.Fatalf("inner payload corrupted: %d bytes -> %d bytes", len(data)-13, len(ops))
		}
		back := EncodeApplyLogSeq(h, ops)
		h2, ops2, err := DecodeApplyLogSeq(back)
		if err != nil {
			t.Fatalf("re-decode of re-encoded header failed: %v", err)
		}
		if h != h2 {
			t.Fatalf("header changed across round trip: %+v -> %+v", h, h2)
		}
		if !bytes.Equal(ops, ops2) {
			t.Fatalf("ops changed across round trip: %d -> %d bytes", len(ops), len(ops2))
		}
		// The seq/epoch prefix is canonical; only the flag byte may differ,
		// and only by dropping bits outside the two defined flags.
		if !bytes.Equal(back[:12], data[:12]) {
			t.Fatalf("canonical prefix changed: %x -> %x", data[:12], back[:12])
		}
		if back[12] != data[12]&(seqFlagFrag|seqFlagOpener) {
			t.Fatalf("flag byte %#x re-encoded as %#x", data[12], back[12])
		}
	})
}

// FuzzShardHeader throws arbitrary bytes at the shard-routing frame
// decoder. Every shard-addressed request (windowed batches, prealloc,
// cross-shard transactions) opens with this 8-byte prefix, and a misparse
// routes a batch to the wrong shard's journal — so the decoder must never
// panic, must reject short frames, and accepted frames must round-trip
// bit-exactly (shard, epoch, and the untouched inner payload).
func FuzzShardHeader(f *testing.F) {
	f.Add([]byte{})
	f.Add(EncodeShardFramed(ShardHeader{Shard: 0, Epoch: 1}, EncodeOps(nil)))
	f.Add(EncodeShardFramed(ShardHeader{Shard: 3, Epoch: 1},
		EncodeApplyLogSeq(SeqHeader{Seq: 9, Epoch: 2, Opener: true}, EncodeOps(nil))))
	f.Add(EncodeShardFramed(ShardHeader{Shard: ^uint32(0), Epoch: ^uint32(0)}, []byte{0xde, 0xad}))
	// The full sharded stack: shard | tenant | seq | ops.
	f.Add(EncodeShardFramed(ShardHeader{Shard: 1, Epoch: 2},
		EncodeTenantFramed(TenantHeader{Tenant: 5},
			EncodeApplyLogSeq(SeqHeader{Seq: 3, Epoch: 1}, EncodeOps(nil)))))
	f.Add([]byte{1, 2, 3, 4, 5, 6, 7}) // one byte short of a header
	f.Fuzz(func(t *testing.T, data []byte) {
		h, inner, err := DecodeShardFramed(data)
		if err != nil {
			if len(data) >= ShardHeaderLen {
				t.Fatalf("%d-byte frame rejected: %v", len(data), err)
			}
			return
		}
		if len(data) < ShardHeaderLen {
			t.Fatalf("short frame (%d bytes) accepted", len(data))
		}
		if !bytes.Equal(inner, data[ShardHeaderLen:]) {
			t.Fatalf("inner payload corrupted: %d bytes -> %d bytes", len(data)-ShardHeaderLen, len(inner))
		}
		back := EncodeShardFramed(h, inner)
		if !bytes.Equal(back, data) {
			t.Fatalf("shard frame not canonical: %x -> %x", data[:ShardHeaderLen], back[:ShardHeaderLen])
		}
		h2, inner2, err := DecodeShardFramed(back)
		if err != nil || h2 != h || !bytes.Equal(inner, inner2) {
			t.Fatalf("shard frame round trip: %+v -> %+v (%v)", h, h2, err)
		}
	})
}

// FuzzTenantHeader throws arbitrary bytes at the tenant-identity frame
// decoder. The frame sits between the shard routing header and the
// completion-window header on every windowed batch, and the service's
// fairness accounting, quota attribution, and anti-spoofing check all key
// off it — so the decoder must never panic, must reject short frames, and
// accepted frames must round-trip the tenant ID exactly with the inner
// payload untouched. The re-encoding zeroes the reserved word, which is the
// one legal difference.
func FuzzTenantHeader(f *testing.F) {
	f.Add([]byte{})
	f.Add(EncodeTenantFramed(TenantHeader{Tenant: 0}, EncodeApplyLogSeq(SeqHeader{Seq: 1, Epoch: 0}, EncodeOps(nil))))
	f.Add(EncodeTenantFramed(TenantHeader{Tenant: 7},
		EncodeApplyLogSeq(SeqHeader{Seq: 42, Epoch: 3, Opener: true},
			EncodeOps([]Op{{Code: OpTruncate, Target: 0x8002, Val: 4096}}))))
	f.Add(EncodeTenantFramed(TenantHeader{Tenant: ^uint32(0)}, []byte{0xde, 0xad}))
	f.Add([]byte{1, 2, 3, 4, 5, 6, 7})                // one byte short of a frame
	f.Add([]byte{9, 0, 0, 0, 0xff, 0xff, 0xff, 0xff}) // hostile reserved word
	f.Fuzz(func(t *testing.T, data []byte) {
		h, inner, err := DecodeTenantFramed(data)
		if err != nil {
			if len(data) >= TenantHeaderLen {
				t.Fatalf("%d-byte frame rejected: %v", len(data), err)
			}
			return
		}
		if len(data) < TenantHeaderLen {
			t.Fatalf("short frame (%d bytes) accepted", len(data))
		}
		if !bytes.Equal(inner, data[TenantHeaderLen:]) {
			t.Fatalf("inner payload corrupted: %d bytes -> %d bytes", len(data)-TenantHeaderLen, len(inner))
		}
		back := EncodeTenantFramed(h, inner)
		h2, inner2, err := DecodeTenantFramed(back)
		if err != nil || h2 != h || !bytes.Equal(inner, inner2) {
			t.Fatalf("tenant frame round trip: %+v -> %+v (%v)", h, h2, err)
		}
		// The tenant ID bytes are canonical; only the reserved word may
		// differ, and only by being zeroed.
		if !bytes.Equal(back[:4], data[:4]) {
			t.Fatalf("tenant bytes changed: %x -> %x", data[:4], back[:4])
		}
		for i := 4; i < TenantHeaderLen; i++ {
			if back[i] != 0 {
				t.Fatalf("reserved byte %d re-encoded nonzero: %#x", i, back[i])
			}
		}
	})
}

// FuzzDecodeReplies covers the remaining fixed-shape decoders (mount
// reply, prealloc request, address list): no panics, and accepted inputs
// round-trip.
func FuzzDecodeReplies(f *testing.F) {
	f.Add([]byte{})
	f.Add(EncodeMountReply(&MountReply{Root: 0x4001, HeapStart: 1 << 20, HeapSize: 7 << 20, Partition: 2, VolumeGID: 100}))
	f.Add(EncodePrealloc(PreallocRequest{Size: 8192, Count: 17}))
	f.Add(EncodeAddrs([]uint64{1, 4096, 1 << 40}))
	f.Add(EncodeTenantCtl(TenantCtlRequest{Tenant: 2, Weight: 8, QuotaBytes: 1 << 30}))
	f.Add(EncodeTenantStatReply([]TenantUsage{
		{Tenant: 1, Shard: 0, Weight: 4, QuotaBytes: 1 << 20, UsedBytes: 4096, ReservedBytes: 8192, Sheds: 2, QuotaRejects: 1},
		{Tenant: 1, Shard: 1, Weight: 4, QuotaBytes: 1 << 20},
	}))
	f.Fuzz(func(t *testing.T, data []byte) {
		if m, err := DecodeMountReply(data); err == nil {
			if got, err := DecodeMountReply(EncodeMountReply(&m)); err != nil || !reflect.DeepEqual(got, m) {
				t.Fatalf("mount reply round trip: %+v %v", got, err)
			}
		}
		if q, err := DecodePrealloc(data); err == nil {
			if got, err := DecodePrealloc(EncodePrealloc(q)); err != nil || got != q {
				t.Fatalf("prealloc round trip: %+v %v", got, err)
			}
		}
		if q, err := DecodeTenantCtl(data); err == nil {
			if got, err := DecodeTenantCtl(EncodeTenantCtl(q)); err != nil || got != q {
				t.Fatalf("tenant ctl round trip: %+v %v", got, err)
			}
		}
		if rows, err := DecodeTenantStatReply(data); err == nil {
			got, err := DecodeTenantStatReply(EncodeTenantStatReply(rows))
			if err != nil || !reflect.DeepEqual(got, rows) {
				t.Fatalf("tenant stat round trip: %+v %v", got, err)
			}
		}
		if addrs, err := DecodeAddrs(data); err == nil {
			got, err := DecodeAddrs(EncodeAddrs(addrs))
			if err != nil || len(got) != len(addrs) {
				t.Fatalf("addrs round trip: %v %v", got, err)
			}
			for i := range addrs {
				if got[i] != addrs[i] {
					t.Fatalf("addrs[%d] changed: %d -> %d", i, addrs[i], got[i])
				}
			}
		}
	})
}
