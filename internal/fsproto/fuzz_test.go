package fsproto

import (
	"bytes"
	"testing"
)

// FuzzDecodeOps throws arbitrary bytes at the batch decoder. The TFS runs
// this decoder on every ApplyLog payload a client ships, so it must never
// panic, and anything it accepts must survive a re-encode/re-decode round
// trip unchanged (otherwise the validated batch and the applied batch could
// differ).
func FuzzDecodeOps(f *testing.F) {
	f.Add([]byte{})
	f.Add(EncodeOps(nil))
	f.Add(EncodeOps([]Op{{Code: OpInsert, Target: 0x4001, Child: 0x8002, Key: []byte("file.txt"), CoverLock: 7}}))
	f.Add(EncodeOps([]Op{
		{Code: OpCreateObject, Target: 0x4001},
		{Code: OpRename, Target: 0x4001, Child: 0x8002, Key: []byte("a"), Key2: []byte("b"), Dir2: 0x4003, CoverLock: 1, Cover2: 2},
		{Code: OpTruncate, Target: 0x8002, Val: 4096},
	}))
	f.Add([]byte{0xff, 0xff, 0xff, 0x7f}) // hostile count
	f.Fuzz(func(t *testing.T, data []byte) {
		ops, err := DecodeOps(data)
		if err != nil {
			return
		}
		back := EncodeOps(ops)
		ops2, err := DecodeOps(back)
		if err != nil {
			t.Fatalf("re-decode of accepted batch failed: %v", err)
		}
		if len(ops) != len(ops2) {
			t.Fatalf("round trip changed op count: %d -> %d", len(ops), len(ops2))
		}
		for i := range ops {
			a, b := ops[i], ops2[i]
			if a.Code != b.Code || a.Target != b.Target || a.Child != b.Child ||
				!bytes.Equal(a.Key, b.Key) || !bytes.Equal(a.Key2, b.Key2) ||
				a.Dir2 != b.Dir2 || a.Val != b.Val || a.Val2 != b.Val2 ||
				a.CoverLock != b.CoverLock || a.Cover2 != b.Cover2 {
				t.Fatalf("round trip changed op %d: %+v -> %+v", i, a, b)
			}
		}
	})
}

// FuzzDecodeReplies covers the remaining fixed-shape decoders (mount
// reply, prealloc request, address list): no panics, and accepted inputs
// round-trip.
func FuzzDecodeReplies(f *testing.F) {
	f.Add([]byte{})
	f.Add(EncodeMountReply(&MountReply{Root: 0x4001, HeapStart: 1 << 20, HeapSize: 7 << 20, Partition: 2, VolumeGID: 100}))
	f.Add(EncodePrealloc(PreallocRequest{Size: 8192, Count: 17}))
	f.Add(EncodeAddrs([]uint64{1, 4096, 1 << 40}))
	f.Fuzz(func(t *testing.T, data []byte) {
		if m, err := DecodeMountReply(data); err == nil {
			if got, err := DecodeMountReply(EncodeMountReply(&m)); err != nil || got != m {
				t.Fatalf("mount reply round trip: %+v %v", got, err)
			}
		}
		if q, err := DecodePrealloc(data); err == nil {
			if got, err := DecodePrealloc(EncodePrealloc(q)); err != nil || got != q {
				t.Fatalf("prealloc round trip: %+v %v", got, err)
			}
		}
		if addrs, err := DecodeAddrs(data); err == nil {
			got, err := DecodeAddrs(EncodeAddrs(addrs))
			if err != nil || len(got) != len(addrs) {
				t.Fatalf("addrs round trip: %v %v", got, err)
			}
			for i := range addrs {
				if got[i] != addrs[i] {
					t.Fatalf("addrs[%d] changed: %d -> %d", i, addrs[i], got[i])
				}
			}
		}
	})
}
