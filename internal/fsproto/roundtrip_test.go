package fsproto_test

import (
	"errors"
	"fmt"
	"testing"

	"github.com/aerie-fs/aerie/internal/fsproto"
	"github.com/aerie-fs/aerie/internal/obs"
	"github.com/aerie-fs/aerie/internal/rpc"
)

// shedError mimics the TFS's admission-control error: it unwraps to ErrBusy
// and carries a retry-after hint for the transport to stamp on the wire.
type shedError struct{ hintMs uint32 }

func (e shedError) Error() string        { return fmt.Sprintf("shed, retry in %dms", e.hintMs) }
func (e shedError) Unwrap() error        { return fsproto.ErrBusy }
func (e shedError) RetryAfterMs() uint32 { return e.hintMs }

// quotaError mimics the TFS's quota rejection: it unwraps to
// ErrQuotaExceeded (stable code 6, distinct from ErrNoSpace) and carries a
// retry-after hint when in-flight reservations of the same tenant may
// release enough to admit a retry.
type quotaError struct{ hintMs uint32 }

func (e quotaError) Error() string        { return fmt.Sprintf("quota, retry in %dms", e.hintMs) }
func (e quotaError) Unwrap() error        { return fsproto.ErrQuotaExceeded }
func (e quotaError) RetryAfterMs() uint32 { return e.hintMs }

const methodFail = 77

// newFailServer returns a server whose handler fails with the error named
// by the request payload.
func newFailServer() *rpc.Server {
	srv := rpc.NewServer()
	srv.Register(methodFail, func(_ uint64, req []byte) ([]byte, error) {
		switch string(req) {
		case "nospace":
			return nil, fmt.Errorf("volume full: %w", fsproto.ErrNoSpace)
		case "toolarge":
			return nil, fsproto.ErrBatchTooLarge
		case "busy":
			return nil, shedError{hintMs: 17}
		case "quota":
			return nil, quotaError{hintMs: 23}
		case "untyped":
			return nil, errors.New("some validation failure")
		}
		return []byte("ok"), nil
	})
	return srv
}

// checkTyped asserts the typed-exhaustion contract on a client, whatever
// the transport: the sentinel survives errors.Is, the stable code arrives,
// IsTransport stays false (an ENOSPC must never look like "server gone",
// which would requeue the batch forever), and the shed hint is carried.
func checkTyped(t *testing.T, c rpc.Client) {
	t.Helper()
	cases := []struct {
		req      string
		sentinel error
		code     uint32
		hintMs   uint32
	}{
		{"nospace", fsproto.ErrNoSpace, fsproto.CodeNoSpace, 0},
		{"toolarge", fsproto.ErrBatchTooLarge, fsproto.CodeBatchTooLarge, 0},
		{"busy", fsproto.ErrBusy, fsproto.CodeBusy, 17},
		{"quota", fsproto.ErrQuotaExceeded, fsproto.CodeQuotaExceeded, 23},
	}
	for _, tc := range cases {
		_, err := c.Call(methodFail, []byte(tc.req))
		if err == nil {
			t.Fatalf("%s: handler error did not cross the wire", tc.req)
		}
		if !errors.Is(err, tc.sentinel) {
			t.Errorf("%s: errors.Is(err, sentinel) = false: %v", tc.req, err)
		}
		if !fsproto.IsExhaustion(err) {
			t.Errorf("%s: IsExhaustion = false: %v", tc.req, err)
		}
		if rpc.IsTransport(err) {
			t.Errorf("%s: typed exhaustion classified as transport failure: %v", tc.req, err)
		}
		var re *rpc.RemoteError
		if !errors.As(err, &re) {
			t.Fatalf("%s: error is not a RemoteError: %v", tc.req, err)
		}
		if re.Code != tc.code {
			t.Errorf("%s: code = %d, want %d", tc.req, re.Code, tc.code)
		}
		if re.RetryAfterMs != tc.hintMs {
			t.Errorf("%s: retry hint = %d, want %d", tc.req, re.RetryAfterMs, tc.hintMs)
		}
	}

	// An unregistered error still crosses as an application error — just
	// uncoded, matching no sentinel.
	_, err := c.Call(methodFail, []byte("untyped"))
	if err == nil || rpc.IsTransport(err) || fsproto.IsExhaustion(err) {
		t.Errorf("untyped: want uncoded application error, got %v", err)
	}
}

func TestExhaustionErrorsRoundTripInProc(t *testing.T) {
	c := rpc.DialInProc(newFailServer(), nil, nil, nil)
	defer c.Close()
	checkTyped(t, c)
}

func TestExhaustionErrorsRoundTripTCP(t *testing.T) {
	ln, err := rpc.ListenTCP(newFailServer(), "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	sink := obs.New()
	c, err := rpc.DialTCPOpts(ln.Addr(), nil, rpc.ClientOptions{Obs: sink})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	checkTyped(t, c)
	// Application rejections must not have tripped the transport's retry
	// machinery: the server answered every call, it just said no.
	if n := sink.Counter("rpc.retries").Load(); n != 0 {
		t.Errorf("rpc.retries = %d after pure application errors, want 0", n)
	}
	if n := sink.Counter("rpc.timeouts").Load(); n != 0 {
		t.Errorf("rpc.timeouts = %d after pure application errors, want 0", n)
	}
}
