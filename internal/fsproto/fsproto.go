// Package fsproto defines the wire protocol between libFS clients and the
// trusted file-system service: RPC method numbers, the metadata-update
// operation log format (§5.3.5 — each log entry identifies the operation,
// the objects it modifies, and the fields it updates), and the encoders and
// decoders both sides share.
//
// Clients buffer Op records locally and ship them in batches; the TFS
// validates each op (structure, locks held, allocations legitimate,
// invariants preserved) before journaling and applying it.
package fsproto

import (
	"fmt"

	"github.com/aerie-fs/aerie/internal/sobj"
	"github.com/aerie-fs/aerie/internal/wire"
)

// RPC methods (range 0x200 is reserved for the file-system service; 0x100
// belongs to the lock service).
const (
	MethodMount     = 0x201
	MethodPrealloc  = 0x202
	MethodApplyLog  = 0x203
	MethodChmod     = 0x204
	MethodOpenFile  = 0x205
	MethodCloseFile = 0x206
	MethodSync      = 0x207
	MethodStatVol   = 0x208
	MethodStatfs    = 0x209
	// MethodApplyLogSeq is ApplyLog with a completion-window header
	// prefixed to the ops payload: pipelined sessions number their
	// in-flight batches per session (seq), stamp the discard generation
	// (epoch), and flag batch fragments, so the TFS can sequence batches
	// that arrive concurrently and fail any batch sequenced after a
	// rejected one (the client discards that suffix anyway).
	MethodApplyLogSeq = 0x20A
	// MethodApplyLogShard is ApplyLogSeq with a shard-routing header
	// (ShardHeader) prefixed to the seq-framed payload: multi-shard volumes
	// address each windowed batch to the namespace shard that owns every
	// object in it. A batch addressed to the wrong shard (or stamped with a
	// stale routing epoch) fails with ErrWrongShard carrying the current
	// (shard, epoch) hint so the client re-resolves.
	MethodApplyLogShard = 0x20B
	// MethodPreallocShard is Prealloc with a ShardHeader prefix: extents
	// must come from the allocator partition of the shard that will own the
	// objects built in them.
	MethodPreallocShard = 0x20C
	// MethodTxApply submits one op group whose objects span multiple shards
	// as a cross-shard two-phase mini-transaction. The header names the
	// coordinator shard (lowest participating shard ID); the payload is the
	// plain EncodeOps batch. The call is synchronous: on return the
	// transaction is applied on every participant or rejected on all.
	MethodTxApply = 0x20D
	// MethodTenantCtl sets one tenant's isolation policy (scheduling weight
	// and space quota) on every shard of the trusted service. Administrative:
	// policy is volatile service state, re-applied at boot from service
	// configuration, not stored on the volume.
	MethodTenantCtl = 0x20E
	// MethodTenantStat returns per-tenant, per-shard usage rows: configured
	// policy plus the bytes currently charged (applied) and reserved
	// (admitted but not yet applied) against each tenant on each shard.
	MethodTenantStat = 0x20F
)

// ShardHeader is the routing prefix of shard-addressed methods.
type ShardHeader struct {
	// Shard is the target namespace shard.
	Shard uint32
	// Epoch is the client's routing epoch (the generation of the shard
	// table it resolved at mount). The service rejects stale epochs with
	// ErrWrongShard so clients re-resolve after reconfiguration.
	Epoch uint32
}

// ShardHeaderLen is the encoded size of a ShardHeader prefix.
const ShardHeaderLen = 8

// EncodeShardFramed prefixes an inner payload with the routing header.
func EncodeShardFramed(h ShardHeader, inner []byte) []byte {
	out := make([]byte, ShardHeaderLen+len(inner))
	out[0] = byte(h.Shard)
	out[1] = byte(h.Shard >> 8)
	out[2] = byte(h.Shard >> 16)
	out[3] = byte(h.Shard >> 24)
	out[4] = byte(h.Epoch)
	out[5] = byte(h.Epoch >> 8)
	out[6] = byte(h.Epoch >> 16)
	out[7] = byte(h.Epoch >> 24)
	copy(out[ShardHeaderLen:], inner)
	return out
}

// DecodeShardFramed splits a shard-addressed payload into the routing
// header and the inner payload.
func DecodeShardFramed(p []byte) (ShardHeader, []byte, error) {
	if len(p) < ShardHeaderLen {
		return ShardHeader{}, nil, fmt.Errorf("fsproto: short shard-framed payload (%d bytes)", len(p))
	}
	h := ShardHeader{
		Shard: uint32(p[0]) | uint32(p[1])<<8 | uint32(p[2])<<16 | uint32(p[3])<<24,
		Epoch: uint32(p[4]) | uint32(p[5])<<8 | uint32(p[6])<<16 | uint32(p[7])<<24,
	}
	return h, p[ShardHeaderLen:], nil
}

// TenantHeader is the tenant-identity prefix of windowed batch payloads. It
// sits between the shard routing header (when present) and the completion
// window header: Shard | Tenant | Seq | ops on sharded volumes, Tenant |
// Seq | ops otherwise. The trusted service validates the stamped tenant
// against the identity registered at mount — the header exists so every
// batch is attributable on the wire (tracing, fairness accounting), not so
// clients can claim an identity; a mismatch rejects the batch.
type TenantHeader struct {
	// Tenant is the client's tenant ID. 0 is the default tenant (unlimited
	// quota, weight 1) that single-tenant deployments implicitly use.
	Tenant uint32
}

// TenantHeaderLen is the encoded size of a TenantHeader prefix (the tenant
// ID plus a reserved word kept zero for future policy bits).
const TenantHeaderLen = 8

// EncodeTenantFramed prefixes an inner payload with the tenant header.
func EncodeTenantFramed(h TenantHeader, inner []byte) []byte {
	out := make([]byte, TenantHeaderLen+len(inner))
	out[0] = byte(h.Tenant)
	out[1] = byte(h.Tenant >> 8)
	out[2] = byte(h.Tenant >> 16)
	out[3] = byte(h.Tenant >> 24)
	// out[4:8] reserved, zero.
	copy(out[TenantHeaderLen:], inner)
	return out
}

// DecodeTenantFramed splits a tenant-framed payload into the tenant header
// and the inner payload.
func DecodeTenantFramed(p []byte) (TenantHeader, []byte, error) {
	if len(p) < TenantHeaderLen {
		return TenantHeader{}, nil, fmt.Errorf("fsproto: short tenant-framed payload (%d bytes)", len(p))
	}
	h := TenantHeader{
		Tenant: uint32(p[0]) | uint32(p[1])<<8 | uint32(p[2])<<16 | uint32(p[3])<<24,
	}
	return h, p[TenantHeaderLen:], nil
}

// SeqHeader is the decoded completion-window header of a MethodApplyLogSeq
// payload.
type SeqHeader struct {
	// Seq is the per-session window sequence number (1-based; 0 means the
	// legacy unsequenced path).
	Seq uint64
	// Epoch is the session's discard generation: a rejection discards the
	// window suffix client-side and bumps the epoch, so stragglers from
	// the dead window are recognizably stale.
	Epoch uint32
	// Frag marks a fragment of a split batch that is NOT the last one:
	// more fragments with the same Seq follow, and the sequence number
	// completes only with the final fragment.
	Frag bool
	// Opener marks the first batch shipped under a new epoch: it
	// re-baselines the server's expected sequence number (the discarded
	// suffix consumed sequence numbers that will never arrive).
	Opener bool
}

const (
	seqFlagFrag   = 1 << 0
	seqFlagOpener = 1 << 1
)

// EncodeApplyLogSeq prefixes an encoded ops payload (EncodeOps) with the
// batch's completion-window header.
func EncodeApplyLogSeq(h SeqHeader, ops []byte) []byte {
	out := make([]byte, 13+len(ops))
	out[0] = byte(h.Seq)
	out[1] = byte(h.Seq >> 8)
	out[2] = byte(h.Seq >> 16)
	out[3] = byte(h.Seq >> 24)
	out[4] = byte(h.Seq >> 32)
	out[5] = byte(h.Seq >> 40)
	out[6] = byte(h.Seq >> 48)
	out[7] = byte(h.Seq >> 56)
	out[8] = byte(h.Epoch)
	out[9] = byte(h.Epoch >> 8)
	out[10] = byte(h.Epoch >> 16)
	out[11] = byte(h.Epoch >> 24)
	if h.Frag {
		out[12] |= seqFlagFrag
	}
	if h.Opener {
		out[12] |= seqFlagOpener
	}
	copy(out[13:], ops)
	return out
}

// DecodeApplyLogSeq splits a MethodApplyLogSeq payload into the window
// header and the inner ops payload (still encoded; the caller hands it to
// DecodeOps).
func DecodeApplyLogSeq(p []byte) (SeqHeader, []byte, error) {
	if len(p) < 13 {
		return SeqHeader{}, nil, fmt.Errorf("fsproto: short ApplyLogSeq payload (%d bytes)", len(p))
	}
	h := SeqHeader{
		Seq: uint64(p[0]) | uint64(p[1])<<8 | uint64(p[2])<<16 | uint64(p[3])<<24 |
			uint64(p[4])<<32 | uint64(p[5])<<40 | uint64(p[6])<<48 | uint64(p[7])<<56,
		Epoch:  uint32(p[8]) | uint32(p[9])<<8 | uint32(p[10])<<16 | uint32(p[11])<<24,
		Frag:   p[12]&seqFlagFrag != 0,
		Opener: p[12]&seqFlagOpener != 0,
	}
	return h, p[13:], nil
}

// Op codes in a metadata-update batch.
const (
	OpCreateObject uint8 = 1 // client-staged object becomes live
	OpInsert       uint8 = 2 // directory/collection insert
	OpRemove       uint8 = 3 // directory/collection remove
	OpRename       uint8 = 4 // atomic two-directory move
	OpAttachExtent uint8 = 5 // link a pre-allocated, pre-written extent
	OpSetSize      uint8 = 6 // mFile logical size
	OpTruncate     uint8 = 7 // shrink an mFile, freeing extents
	OpSetAttr      uint8 = 8 // permission bits / attribute word
	OpReplaceExt   uint8 = 9 // swap a single-extent mFile's extent
)

// Op is one metadata update. Fields are a union across op codes; CoverLock
// names the lock the client claims covers the target (its own lock, or a
// hierarchical ancestor's).
type Op struct {
	Code      uint8
	Target    sobj.OID // object being modified (directory for inserts)
	Child     sobj.OID // inserted/removed object; rename: moved object
	Key       []byte   // collection key (insert/remove; rename: source key)
	Key2      []byte   // rename: destination key
	Dir2      sobj.OID // rename: destination directory
	Val       uint64   // size / blockIdx / perm / attrs
	Val2      uint64   // extent addr / capacity
	CoverLock uint64   // lock claimed to cover Target
	Cover2    uint64   // rename: lock claimed to cover Dir2
}

// AppendOp encodes op onto w.
func AppendOp(w *wire.Writer, op *Op) {
	w.U8(op.Code)
	w.U64(uint64(op.Target))
	w.U64(uint64(op.Child))
	w.Bytes32(op.Key)
	w.Bytes32(op.Key2)
	w.U64(uint64(op.Dir2))
	w.U64(op.Val)
	w.U64(op.Val2)
	w.U64(op.CoverLock)
	w.U64(op.Cover2)
}

// DecodeOps decodes a batch of ops, validating structure.
func DecodeOps(payload []byte) ([]Op, error) {
	r := wire.NewReader(payload)
	n := r.U32()
	if r.Err() != nil {
		return nil, r.Err()
	}
	if n > 1<<20 {
		return nil, fmt.Errorf("fsproto: implausible op count %d", n)
	}
	// Bound the preallocation by what the payload could possibly hold (an
	// encoded op is at least 65 bytes): the payload is client-controlled,
	// and a forged count must not make the trusted service allocate big
	// slabs before the first field read fails.
	capHint := n
	if most := uint32(len(payload)/65) + 1; most < capHint {
		capHint = most
	}
	ops := make([]Op, 0, capHint)
	for i := uint32(0); i < n; i++ {
		var op Op
		op.Code = r.U8()
		op.Target = sobj.OID(r.U64())
		op.Child = sobj.OID(r.U64())
		op.Key = append([]byte(nil), r.Bytes32()...)
		op.Key2 = append([]byte(nil), r.Bytes32()...)
		op.Dir2 = sobj.OID(r.U64())
		op.Val = r.U64()
		op.Val2 = r.U64()
		op.CoverLock = r.U64()
		op.Cover2 = r.U64()
		if r.Err() != nil {
			return nil, r.Err()
		}
		if op.Code == 0 || op.Code > OpReplaceExt {
			return nil, fmt.Errorf("fsproto: unknown op code %d", op.Code)
		}
		ops = append(ops, op)
	}
	if err := r.Finish(); err != nil {
		return nil, err
	}
	return ops, nil
}

// EncodeOps builds an ApplyLog payload from ops.
func EncodeOps(ops []Op) []byte {
	w := wire.NewWriter(64 * len(ops))
	w.U32(uint32(len(ops)))
	for i := range ops {
		AppendOp(w, &ops[i])
	}
	return w.Bytes()
}

// ShardInfo describes one namespace shard in a MountReply: its root
// collection, its allocator partition (the client mounts every shard's
// partition and routes by address range), and the heap span that partition
// manages.
type ShardInfo struct {
	Root      sobj.OID
	HeapStart uint64
	HeapSize  uint64
	Partition uint32
}

// MountReply is the response to MethodMount. Root/HeapStart/HeapSize/
// Partition describe shard 0 (the only shard on unsharded volumes, and the
// pinned PXFS root shard otherwise); Shards lists every shard in shard-ID
// order, and RoutingEpoch stamps the table's generation for ErrWrongShard
// re-resolution.
type MountReply struct {
	Root         sobj.OID
	HeapStart    uint64
	HeapSize     uint64
	Partition    uint32
	VolumeGID    uint32
	RoutingEpoch uint32
	Shards       []ShardInfo
}

// EncodeMountReply serializes r.
func EncodeMountReply(m *MountReply) []byte {
	w := wire.NewWriter(64 + 32*len(m.Shards))
	w.U64(uint64(m.Root))
	w.U64(m.HeapStart)
	w.U64(m.HeapSize)
	w.U32(m.Partition)
	w.U32(m.VolumeGID)
	w.U32(m.RoutingEpoch)
	w.U32(uint32(len(m.Shards)))
	for i := range m.Shards {
		s := &m.Shards[i]
		w.U64(uint64(s.Root))
		w.U64(s.HeapStart)
		w.U64(s.HeapSize)
		w.U32(s.Partition)
	}
	return w.Bytes()
}

// DecodeMountReply parses a MethodMount response.
func DecodeMountReply(p []byte) (MountReply, error) {
	r := wire.NewReader(p)
	var m MountReply
	m.Root = sobj.OID(r.U64())
	m.HeapStart = r.U64()
	m.HeapSize = r.U64()
	m.Partition = r.U32()
	m.VolumeGID = r.U32()
	m.RoutingEpoch = r.U32()
	n := r.U32()
	if r.Err() != nil {
		return MountReply{}, r.Err()
	}
	if n > 1024 {
		return MountReply{}, fmt.Errorf("fsproto: implausible shard count %d", n)
	}
	for i := uint32(0); i < n; i++ {
		var s ShardInfo
		s.Root = sobj.OID(r.U64())
		s.HeapStart = r.U64()
		s.HeapSize = r.U64()
		s.Partition = r.U32()
		m.Shards = append(m.Shards, s)
	}
	if err := r.Finish(); err != nil {
		return MountReply{}, err
	}
	return m, nil
}

// ShardStat is one shard's row in a StatfsReply: its partition's share of
// the aggregate space and object accounting.
type ShardStat struct {
	TotalBytes     uint64
	FreeBytes      uint64
	ReservedBytes  uint64
	Objects        uint64
	BatchesApplied uint64
}

// StatfsReply is the response to MethodStatfs: volume-wide space and object
// accounting, including bytes held by open admission reservations. On
// sharded volumes the top-level fields aggregate across shards and Shards
// carries the per-shard rows in shard-ID order.
type StatfsReply struct {
	TotalBytes     uint64 // managed heap size
	FreeBytes      uint64 // allocatable now (excludes reserved)
	ReservedBytes  uint64 // held by in-flight batch reservations
	Objects        uint64 // objects reachable from the root namespace
	BatchesApplied uint64
	Shards         []ShardStat
}

// EncodeStatfsReply serializes r.
func EncodeStatfsReply(m *StatfsReply) []byte {
	w := wire.NewWriter(48 + 40*len(m.Shards))
	w.U64(m.TotalBytes)
	w.U64(m.FreeBytes)
	w.U64(m.ReservedBytes)
	w.U64(m.Objects)
	w.U64(m.BatchesApplied)
	w.U32(uint32(len(m.Shards)))
	for i := range m.Shards {
		s := &m.Shards[i]
		w.U64(s.TotalBytes)
		w.U64(s.FreeBytes)
		w.U64(s.ReservedBytes)
		w.U64(s.Objects)
		w.U64(s.BatchesApplied)
	}
	return w.Bytes()
}

// DecodeStatfsReply parses a MethodStatfs response.
func DecodeStatfsReply(p []byte) (StatfsReply, error) {
	r := wire.NewReader(p)
	var m StatfsReply
	m.TotalBytes = r.U64()
	m.FreeBytes = r.U64()
	m.ReservedBytes = r.U64()
	m.Objects = r.U64()
	m.BatchesApplied = r.U64()
	n := r.U32()
	if r.Err() != nil {
		return StatfsReply{}, r.Err()
	}
	if n > 1024 {
		return StatfsReply{}, fmt.Errorf("fsproto: implausible shard count %d", n)
	}
	for i := uint32(0); i < n; i++ {
		var s ShardStat
		s.TotalBytes = r.U64()
		s.FreeBytes = r.U64()
		s.ReservedBytes = r.U64()
		s.Objects = r.U64()
		s.BatchesApplied = r.U64()
		m.Shards = append(m.Shards, s)
	}
	if err := r.Finish(); err != nil {
		return StatfsReply{}, err
	}
	return m, nil
}

// PreallocRequest asks for count extents of size bytes each.
type PreallocRequest struct {
	Size  uint64
	Count uint32
}

// EncodePrealloc serializes a PreallocRequest.
func EncodePrealloc(q PreallocRequest) []byte {
	w := wire.NewWriter(16)
	w.U64(q.Size)
	w.U32(q.Count)
	return w.Bytes()
}

// DecodePrealloc parses a PreallocRequest.
func DecodePrealloc(p []byte) (PreallocRequest, error) {
	r := wire.NewReader(p)
	var q PreallocRequest
	q.Size = r.U64()
	q.Count = r.U32()
	if err := r.Finish(); err != nil {
		return PreallocRequest{}, err
	}
	return q, nil
}

// EncodeAddrs serializes a list of extent addresses.
func EncodeAddrs(addrs []uint64) []byte {
	w := wire.NewWriter(8 + 8*len(addrs))
	w.U32(uint32(len(addrs)))
	for _, a := range addrs {
		w.U64(a)
	}
	return w.Bytes()
}

// TenantCtlRequest sets one tenant's policy: its weighted-fair scheduling
// weight and its space quota in bytes (0 = unlimited). Weight 0 is
// normalized to 1 by the service.
type TenantCtlRequest struct {
	Tenant     uint32
	Weight     uint32
	QuotaBytes uint64
}

// EncodeTenantCtl serializes a TenantCtlRequest.
func EncodeTenantCtl(q TenantCtlRequest) []byte {
	w := wire.NewWriter(16)
	w.U32(q.Tenant)
	w.U32(q.Weight)
	w.U64(q.QuotaBytes)
	return w.Bytes()
}

// DecodeTenantCtl parses a TenantCtlRequest.
func DecodeTenantCtl(p []byte) (TenantCtlRequest, error) {
	r := wire.NewReader(p)
	var q TenantCtlRequest
	q.Tenant = r.U32()
	q.Weight = r.U32()
	q.QuotaBytes = r.U64()
	if err := r.Finish(); err != nil {
		return TenantCtlRequest{}, err
	}
	return q, nil
}

// TenantUsage is one (tenant, shard) accounting row in a TenantStat reply.
// UsedBytes and ReservedBytes are that shard's volatile charge against the
// tenant: used bytes were drawn by applied batches (net of frees the tenant
// performed), reserved bytes are held by admitted-but-unapplied batches.
// The quota check gates on used+reserved, so the rows explain any
// ErrQuotaExceeded exactly.
type TenantUsage struct {
	Tenant        uint32
	Shard         uint32
	Weight        uint32
	QuotaBytes    uint64
	UsedBytes     uint64
	ReservedBytes uint64
	Sheds         uint64 // batches shed by weighted admission for this tenant
	QuotaRejects  uint64 // batches rejected at reservation time by quota
}

// EncodeTenantStatReply serializes per-tenant usage rows.
func EncodeTenantStatReply(rows []TenantUsage) []byte {
	w := wire.NewWriter(8 + 52*len(rows))
	w.U32(uint32(len(rows)))
	for i := range rows {
		u := &rows[i]
		w.U32(u.Tenant)
		w.U32(u.Shard)
		w.U32(u.Weight)
		w.U64(u.QuotaBytes)
		w.U64(u.UsedBytes)
		w.U64(u.ReservedBytes)
		w.U64(u.Sheds)
		w.U64(u.QuotaRejects)
	}
	return w.Bytes()
}

// DecodeTenantStatReply parses a MethodTenantStat response.
func DecodeTenantStatReply(p []byte) ([]TenantUsage, error) {
	r := wire.NewReader(p)
	n := r.U32()
	if r.Err() != nil {
		return nil, r.Err()
	}
	// tenants × shards rows; bound the preallocation like the other
	// list decoders so a corrupt count cannot force a huge slab.
	if n > 1<<16 {
		return nil, fmt.Errorf("fsproto: implausible tenant row count %d", n)
	}
	capHint := n
	if most := uint32(len(p)/52) + 1; most < capHint {
		capHint = most
	}
	rows := make([]TenantUsage, 0, capHint)
	for i := uint32(0); i < n; i++ {
		var u TenantUsage
		u.Tenant = r.U32()
		u.Shard = r.U32()
		u.Weight = r.U32()
		u.QuotaBytes = r.U64()
		u.UsedBytes = r.U64()
		u.ReservedBytes = r.U64()
		u.Sheds = r.U64()
		u.QuotaRejects = r.U64()
		if r.Err() != nil {
			return nil, r.Err()
		}
		rows = append(rows, u)
	}
	if err := r.Finish(); err != nil {
		return nil, err
	}
	return rows, nil
}

// DecodeAddrs parses a list of extent addresses.
func DecodeAddrs(p []byte) ([]uint64, error) {
	r := wire.NewReader(p)
	n := r.U32()
	if r.Err() != nil {
		return nil, r.Err()
	}
	if n > 1<<20 {
		return nil, fmt.Errorf("fsproto: implausible addr count %d", n)
	}
	addrs := make([]uint64, 0, n)
	for i := uint32(0); i < n; i++ {
		addrs = append(addrs, r.U64())
	}
	if err := r.Finish(); err != nil {
		return nil, err
	}
	return addrs, nil
}
