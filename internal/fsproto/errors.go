package fsproto

import (
	"errors"

	"github.com/aerie-fs/aerie/internal/rpc"
)

// Typed resource-exhaustion errors. These are protocol-level: both sides of
// the wire agree on their stable codes (registered below), so a client-side
// errors.Is against the sentinel holds after a round trip while
// rpc.IsTransport stays false — exhaustion is an application outcome, not a
// transport failure, and must never trigger the transport's retry storm.
var (
	// ErrNoSpace is the ENOSPC of the protocol: the volume cannot cover
	// the request's worst-case space demand.
	ErrNoSpace = errors.New("fsproto: out of space")
	// ErrBatchTooLarge rejects a batch whose journal payload exceeds the
	// journal's capacity even after a checkpoint; the client must split or
	// abandon it.
	ErrBatchTooLarge = errors.New("fsproto: batch exceeds journal capacity")
	// ErrBusy sheds a request under admission control; the RemoteError's
	// RetryAfterMs carries the server's backpressure hint.
	ErrBusy = errors.New("fsproto: service busy")
	// ErrWindowStale rejects a sequenced batch from a dead part of the
	// client's completion window: an earlier batch of the same epoch was
	// rejected (the client discards this suffix), or the batch carries an
	// epoch the client has already moved past. The client library treats
	// it as confirmation of a discard it already performed, never as an
	// independent failure.
	ErrWindowStale = errors.New("fsproto: stale window batch")
	// ErrWrongShard rejects a shard-addressed request whose target shard
	// does not own every object in it, or whose routing epoch is stale. The
	// RemoteError's RetryAfterMs carries a packed (owning shard, current
	// routing epoch) hint — see WrongShardHint — so the client re-resolves
	// its shard table and re-routes instead of blind-retrying.
	ErrWrongShard = errors.New("fsproto: wrong shard")
	// ErrQuotaExceeded rejects a batch whose worst-case space demand would
	// push its tenant past the tenant's configured space quota. Distinct
	// from ErrNoSpace: the volume may have plenty of free space — it is the
	// tenant's slice that is exhausted, and only the tenant freeing its own
	// data (or an administrator raising the quota) clears it. Enforced at
	// reservation time with the same batch-granularity atomicity as the
	// exhaustion path: a quota rejection happens before the journal is
	// touched, so no partial batch ever lands. When other batches of the
	// same tenant are still in flight (reserved but unapplied), the
	// RemoteError's RetryAfterMs carries a hint — their release may admit a
	// retry without any administrative action.
	ErrQuotaExceeded = errors.New("fsproto: tenant quota exceeded")
)

// Stable wire codes for the exhaustion errors. Codes are protocol constants
// like method numbers: never renumber.
const (
	CodeNoSpace       uint32 = 1
	CodeBatchTooLarge uint32 = 2
	CodeBusy          uint32 = 3
	CodeWindowStale   uint32 = 4
	CodeWrongShard    uint32 = 5
	CodeQuotaExceeded uint32 = 6
)

func init() {
	rpc.RegisterErrorCode(CodeNoSpace, ErrNoSpace)
	rpc.RegisterErrorCode(CodeBatchTooLarge, ErrBatchTooLarge)
	rpc.RegisterErrorCode(CodeBusy, ErrBusy)
	rpc.RegisterErrorCode(CodeWindowStale, ErrWindowStale)
	rpc.RegisterErrorCode(CodeWrongShard, ErrWrongShard)
	rpc.RegisterErrorCode(CodeQuotaExceeded, ErrQuotaExceeded)
}

// IsExhaustion reports whether err is one of the typed resource-exhaustion
// outcomes (possibly after an RPC round trip).
func IsExhaustion(err error) bool {
	return errors.Is(err, ErrNoSpace) || errors.Is(err, ErrBatchTooLarge) ||
		errors.Is(err, ErrBusy) || errors.Is(err, ErrQuotaExceeded)
}

// WrongShardError is the service-side form of ErrWrongShard: it names the
// shard that actually owns the misrouted object (or the coordinator shard
// for a misrouted transaction) and the service's current routing epoch.
//
// The RPC layer flattens handler errors to a RemoteError, so the structured
// fields cannot cross the wire as a type; they ride the RetryAfterMs hint
// channel instead (the only structured side-channel a RemoteError carries),
// packed as epoch<<8 | shard. WrongShardHint unpacks them client-side.
type WrongShardError struct {
	Shard uint32 // owning shard (modulo wrongShardMask)
	Epoch uint32 // current routing epoch (modulo wrongShardMask width)
}

const wrongShardBits = 8 // shard field width in the packed hint

func (e *WrongShardError) Error() string {
	return ErrWrongShard.Error()
}

func (e *WrongShardError) Unwrap() error { return ErrWrongShard }

// RetryAfterMs packs (epoch, shard) into the RemoteError hint channel.
func (e *WrongShardError) RetryAfterMs() uint32 {
	return e.Epoch<<wrongShardBits | (e.Shard & (1<<wrongShardBits - 1))
}

// WrongShardHint extracts the (shard, epoch) routing hint from an
// ErrWrongShard that crossed the RPC boundary. ok is false when err is not
// a wrong-shard outcome.
func WrongShardHint(err error) (shard, epoch uint32, ok bool) {
	if !errors.Is(err, ErrWrongShard) {
		return 0, 0, false
	}
	var re *rpc.RemoteError
	if errors.As(err, &re) {
		return re.RetryAfterMs & (1<<wrongShardBits - 1), re.RetryAfterMs >> wrongShardBits, true
	}
	var we *WrongShardError
	if errors.As(err, &we) {
		return we.Shard, we.Epoch, true
	}
	return 0, 0, true
}
