package fsproto

import (
	"errors"

	"github.com/aerie-fs/aerie/internal/rpc"
)

// Typed resource-exhaustion errors. These are protocol-level: both sides of
// the wire agree on their stable codes (registered below), so a client-side
// errors.Is against the sentinel holds after a round trip while
// rpc.IsTransport stays false — exhaustion is an application outcome, not a
// transport failure, and must never trigger the transport's retry storm.
var (
	// ErrNoSpace is the ENOSPC of the protocol: the volume cannot cover
	// the request's worst-case space demand.
	ErrNoSpace = errors.New("fsproto: out of space")
	// ErrBatchTooLarge rejects a batch whose journal payload exceeds the
	// journal's capacity even after a checkpoint; the client must split or
	// abandon it.
	ErrBatchTooLarge = errors.New("fsproto: batch exceeds journal capacity")
	// ErrBusy sheds a request under admission control; the RemoteError's
	// RetryAfterMs carries the server's backpressure hint.
	ErrBusy = errors.New("fsproto: service busy")
	// ErrWindowStale rejects a sequenced batch from a dead part of the
	// client's completion window: an earlier batch of the same epoch was
	// rejected (the client discards this suffix), or the batch carries an
	// epoch the client has already moved past. The client library treats
	// it as confirmation of a discard it already performed, never as an
	// independent failure.
	ErrWindowStale = errors.New("fsproto: stale window batch")
)

// Stable wire codes for the exhaustion errors. Codes are protocol constants
// like method numbers: never renumber.
const (
	CodeNoSpace       uint32 = 1
	CodeBatchTooLarge uint32 = 2
	CodeBusy          uint32 = 3
	CodeWindowStale   uint32 = 4
)

func init() {
	rpc.RegisterErrorCode(CodeNoSpace, ErrNoSpace)
	rpc.RegisterErrorCode(CodeBatchTooLarge, ErrBatchTooLarge)
	rpc.RegisterErrorCode(CodeBusy, ErrBusy)
	rpc.RegisterErrorCode(CodeWindowStale, ErrWindowStale)
}

// IsExhaustion reports whether err is one of the typed resource-exhaustion
// outcomes (possibly after an RPC round trip).
func IsExhaustion(err error) bool {
	return errors.Is(err, ErrNoSpace) || errors.Is(err, ErrBatchTooLarge) || errors.Is(err, ErrBusy)
}
