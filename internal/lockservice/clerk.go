package lockservice

import (
	"fmt"
	"sync"
	"time"

	"github.com/aerie-fs/aerie/internal/costmodel"
	"github.com/aerie-fs/aerie/internal/obs"
	"github.com/aerie-fs/aerie/internal/rpc"
	"github.com/aerie-fs/aerie/internal/wire"
)

// Clerk is the client-side lock agent (§5.1). It acquires global locks from
// the service over RPC, caches grants after local release (so repeated
// access by the same process stays local), issues lightweight local
// mutexes to the process's threads, answers requests for descendants of a
// hierarchical grant without further RPCs, and de-escalates in response to
// revocation callbacks: when a conflicting request arrives, the clerk stops
// admitting new local users, drains current ones, runs the registered
// flush hook (shipping batched metadata updates), and releases the global
// lock.
type Clerk struct {
	rc rpc.Client

	mu      sync.Mutex
	entries map[uint64]*entry
	closed  bool

	onRelease func(lockID uint64)
	tracer    *costmodel.Tracer

	// Metrics resolved by SetObs; nil (free no-ops) until then.
	obsLocalHits   *obs.Counter
	obsGlobalCalls *obs.Counter

	renewStop chan struct{}
	renewWG   sync.WaitGroup

	// Stats.
	LocalHits   int64
	GlobalCalls int64
	SubGrants   int64
}

type entry struct {
	id uint64

	mu   sync.Mutex
	cond *sync.Cond

	has      bool  // global grant held
	class    Class // global class
	hier     bool
	dead     bool // removed from the clerk; retry lookup
	dropping bool // a teardown is in progress
	fetching bool // a global acquire RPC is in flight

	readers  int // local shared holds (S, IS, IX)
	writer   bool
	users    int // all local holds including sub-lock covers
	revoke   bool
	lastUse  time.Time
	revGoing bool // a revocation drain goroutine is active

	subs map[uint64]*subLock
}

type subLock struct {
	readers int
	writer  bool
}

// ClerkConfig tunes a clerk.
type ClerkConfig struct {
	// RenewEvery starts a background lease-renewal loop when nonzero.
	RenewEvery time.Duration
}

// NewClerk creates a clerk speaking to the lock service through rc.
// Route CallbackRevoke payloads to HandleCallback.
func NewClerk(rc rpc.Client, cfg ClerkConfig) *Clerk {
	c := &Clerk{rc: rc, entries: make(map[uint64]*entry)}
	if cfg.RenewEvery > 0 {
		c.renewStop = make(chan struct{})
		c.renewWG.Add(1)
		go func() {
			defer c.renewWG.Done()
			t := time.NewTicker(cfg.RenewEvery)
			defer t.Stop()
			for {
				select {
				case <-t.C:
					_, _ = c.rc.Call(MethodRenew, nil)
				case <-c.renewStop:
					return
				}
			}
		}()
	}
	return c
}

// OnRelease registers the hook run just before a global lock is released
// (voluntarily or by revocation). libFS ships batched metadata updates
// here; PXFS flushes its path-name cache.
func (c *Clerk) OnRelease(fn func(lockID uint64)) { c.onRelease = fn }

// SetTracer attaches a phase tracer recording lock-hold intervals for the
// scalability simulator (single-threaded capture runs only).
func (c *Clerk) SetTracer(t *costmodel.Tracer) { c.tracer = t }

// SetObs attaches an observability sink: lock.clerk.local_hits counts
// acquires satisfied by the local grant cache, lock.clerk.global_calls
// counts round-trips to the lock service. Call before first use.
func (c *Clerk) SetObs(sink *obs.Sink) {
	c.obsLocalHits = sink.Counter("lock.clerk.local_hits")
	c.obsGlobalCalls = sink.Counter("lock.clerk.global_calls")
}

func lockResource(id uint64) string { return fmt.Sprintf("lock:%x", id) }

func traceMode(class Class) costmodel.ResourceMode {
	if class == X {
		return costmodel.Exclusive
	}
	return costmodel.Shared
}

func (c *Clerk) entryFor(id uint64) *entry {
	for {
		c.mu.Lock()
		e := c.entries[id]
		if e == nil {
			e = &entry{id: id, subs: make(map[uint64]*subLock)}
			e.cond = sync.NewCond(&e.mu)
			c.entries[id] = e
		}
		c.mu.Unlock()
		e.mu.Lock()
		if !e.dead {
			return e // returned with e.mu held
		}
		e.mu.Unlock()
	}
}

// Acquire takes lock id in class (hier requests a hierarchical grant) and
// admits the caller as a local user: exclusive for X, shared otherwise.
// Callers must Release with the same class.
func (c *Clerk) Acquire(id uint64, class Class, hier bool) error {
	for {
		ok, err := c.tryAcquire(id, class, hier)
		if err != nil {
			return err
		}
		if ok {
			return nil
		}
		// A revocation tore the entry down while we waited; retry
		// against a fresh entry (re-acquiring the global lock).
	}
}

// tryAcquire attempts one admission round. It returns (false, nil) when the
// entry was revoked out from under the caller and the acquire must restart.
func (c *Clerk) tryAcquire(id uint64, class Class, hier bool) (bool, error) {
	e := c.entryFor(id) // returns with e.mu held
	defer func() { e.mu.Unlock() }()
	// A revocation in progress bars new local users (§5.1): wait for the
	// teardown to finish, then restart.
	if e.revoke {
		for !e.dead {
			e.cond.Wait()
		}
		return false, nil
	}
	// Wait out a concurrent global fetch so a second caller merges into the
	// first grant instead of racing a redundant RPC against it.
	for e.fetching {
		e.cond.Wait()
		if e.dead {
			return false, nil
		}
		if e.revoke {
			for !e.dead {
				e.cond.Wait()
			}
			return false, nil
		}
	}
	if !e.has || !covers(e.class, class) || (hier && !e.hier) {
		want := class
		if e.has {
			want = merge(e.class, class)
		}
		wantHier := hier || e.hier
		// The RPC must not run under e.mu: the service delivers revocation
		// callbacks synchronously on a waiter's goroutine (in-process
		// transport), and HandleCallback needs e.mu. Holding it across the
		// call deadlocks two clients that upgrade the same lock concurrently
		// — each blocked in Acquire waiting for the other's release, each
		// revoke blocked on the e.mu the other's acquire holds.
		rpcErr := c.callAcquire(e, id, want, wantHier)
		if rpcErr != nil {
			return false, fmt.Errorf("clerk: acquire %#x %v: %w", id, class, rpcErr)
		}
		if e.dead || e.dropping {
			// A revocation tore the entry down while the acquire was in
			// flight: the teardown released whatever grant it knew about, so
			// the grant this call just won is untracked. Surrender it and
			// restart against a fresh entry.
			c.callSurrender(e, id)
			return false, nil
		}
		e.has = true
		e.class = want
		e.hier = e.hier || wantHier
		if e.revoke {
			// Revoked while acquiring. The entry now records the grant, so
			// the pending teardown flushes and releases it; admit nobody.
			e.cond.Broadcast()
			return false, nil
		}
	} else {
		c.LocalHits++
		c.obsLocalHits.Inc()
	}
	// Local admission.
	if class == X {
		for e.writer || e.readers > 0 {
			e.cond.Wait()
			if e.revoke || e.dead {
				return false, nil
			}
		}
		e.writer = true
	} else {
		for e.writer {
			e.cond.Wait()
			if e.revoke || e.dead {
				return false, nil
			}
		}
		e.readers++
	}
	e.users++
	e.lastUse = time.Now()
	c.tracer.EnterResource(lockResource(id), traceMode(class))
	return true, nil
}

// callAcquire ships the global acquire RPC with e.mu released: the service
// delivers revocation callbacks synchronously on a waiter's goroutine
// (in-process transport), and HandleCallback needs e.mu — holding it across
// the call deadlocks two clients that upgrade the same lock concurrently.
// e.fetching bars other would-be fetchers meanwhile so they merge into this
// grant instead of racing redundant RPCs. The deferred relock also runs when
// the transport panics (fault-injected crashes unwind through here), keeping
// tryAcquire's own deferred unlock balanced.
func (c *Clerk) callAcquire(e *entry, id uint64, want Class, wantHier bool) error {
	e.fetching = true
	e.mu.Unlock()
	defer func() {
		e.mu.Lock()
		e.fetching = false
		e.cond.Broadcast()
	}()
	w := wire.NewWriter(16)
	w.U64(id)
	w.U8(uint8(want))
	w.Bool(wantHier)
	c.GlobalCalls++
	c.obsGlobalCalls.Inc()
	_, err := c.rc.Call(MethodAcquire, w.Bytes())
	return err
}

// callSurrender gives back a grant won by an acquire that raced a teardown
// (the entry died while the RPC was in flight, so the grant is untracked).
// Same discipline as callAcquire: e.mu is released around the RPC and
// re-taken even on a fault-injected panic.
func (c *Clerk) callSurrender(e *entry, id uint64) {
	e.mu.Unlock()
	defer e.mu.Lock()
	w := wire.NewWriter(8)
	w.U64(id)
	_, _ = c.rc.Call(MethodRelease, w.Bytes())
}

// Release ends a local hold taken by Acquire with the same class. The
// global lock stays cached unless a revocation is pending.
func (c *Clerk) Release(id uint64, class Class) {
	c.tracer.ExitResource(lockResource(id))
	c.mu.Lock()
	e := c.entries[id]
	c.mu.Unlock()
	if e == nil {
		return
	}
	e.mu.Lock()
	if class == X {
		e.writer = false
	} else if e.readers > 0 {
		e.readers--
	}
	if e.users > 0 {
		e.users--
	}
	e.lastUse = time.Now()
	needDrop := e.revoke && e.users == 0
	e.cond.Broadcast()
	e.mu.Unlock()
	if needDrop {
		c.dropGlobal(e)
	}
}

// AcquireSub grants a local lock on subID under a hierarchical cover held
// on coverID, without any RPC (§5.3.4: "the clerk answers requests for
// locks on descendant objects locally"). Returns false when the cover is
// insufficient (not held, not hierarchical, wrong mode, or being revoked);
// the caller then falls back to an explicit global lock.
func (c *Clerk) AcquireSub(coverID, subID uint64, write bool) bool {
	c.mu.Lock()
	e := c.entries[coverID]
	c.mu.Unlock()
	if e == nil {
		return false
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	need := S
	if write {
		need = X
	}
	if e.dead || e.revoke || !e.has || !e.hier || !covers(e.class, need) {
		return false
	}
	sl := e.subs[subID]
	if sl == nil {
		sl = &subLock{}
		e.subs[subID] = sl
	}
	if write {
		for sl.writer || sl.readers > 0 {
			e.cond.Wait()
			if e.dead || e.revoke {
				return false
			}
		}
		sl.writer = true
	} else {
		for sl.writer {
			e.cond.Wait()
			if e.dead || e.revoke {
				return false
			}
		}
		sl.readers++
	}
	e.users++
	c.SubGrants++
	mode := costmodel.Shared
	if write {
		mode = costmodel.Exclusive
	}
	c.tracer.EnterResource(lockResource(subID), mode)
	return true
}

// ReleaseSub ends a local sub-lock hold.
func (c *Clerk) ReleaseSub(coverID, subID uint64, write bool) {
	c.tracer.ExitResource(lockResource(subID))
	c.mu.Lock()
	e := c.entries[coverID]
	c.mu.Unlock()
	if e == nil {
		return
	}
	e.mu.Lock()
	if sl := e.subs[subID]; sl != nil {
		if write {
			sl.writer = false
		} else if sl.readers > 0 {
			sl.readers--
		}
		if !sl.writer && sl.readers == 0 {
			delete(e.subs, subID)
		}
	}
	if e.users > 0 {
		e.users--
	}
	needDrop := e.revoke && e.users == 0
	e.cond.Broadcast()
	e.mu.Unlock()
	if needDrop {
		c.dropGlobal(e)
	}
}

// dropGlobal ships pending state and releases the global lock. Exactly one
// caller wins the teardown; others return immediately.
func (c *Clerk) dropGlobal(e *entry) {
	e.mu.Lock()
	if e.dead || e.dropping {
		e.mu.Unlock()
		return
	}
	e.dropping = true
	has := e.has
	e.mu.Unlock()
	if has {
		if c.onRelease != nil {
			c.onRelease(e.id)
		}
		w := wire.NewWriter(8)
		w.U64(e.id)
		_, _ = c.rc.Call(MethodRelease, w.Bytes())
	}
	e.mu.Lock()
	e.has = false
	e.dead = true
	e.cond.Broadcast()
	e.mu.Unlock()
	c.forget(e)
}

func (c *Clerk) forget(e *entry) {
	c.mu.Lock()
	if c.entries[e.id] == e {
		delete(c.entries, e.id)
	}
	c.mu.Unlock()
}

// HandleCallback processes a server callback; the host routes
// CallbackRevoke here. Revocation drains asynchronously: new local users
// are refused, current ones finish, then the flush hook runs and the global
// lock is released.
func (c *Clerk) HandleCallback(method uint32, payload []byte) {
	if method != CallbackRevoke {
		return
	}
	r := wire.NewReader(payload)
	id := r.U64()
	_ = r.U8() // wanted class; the clerk always fully releases
	c.mu.Lock()
	e := c.entries[id]
	c.mu.Unlock()
	if e == nil {
		return // stale revoke; nothing cached
	}
	e.mu.Lock()
	if e.dead || e.revGoing {
		e.mu.Unlock()
		return
	}
	e.revoke = true
	e.revGoing = true
	idle := e.users == 0
	e.mu.Unlock()
	if idle {
		c.dropGlobal(e)
		return
	}
	// Drain on a separate goroutine: the callback may arrive on a
	// goroutine that itself holds clerk state (in-process transport).
	go func() {
		e.mu.Lock()
		for e.users > 0 && !e.dead {
			e.cond.Wait()
		}
		dead := e.dead
		e.mu.Unlock()
		if !dead {
			c.dropGlobal(e)
		}
	}()
}

// ReleaseGlobal voluntarily ships state and releases a cached global lock
// (no-op when not cached). Used by Sync and unmount.
func (c *Clerk) ReleaseGlobal(id uint64) {
	c.mu.Lock()
	e := c.entries[id]
	c.mu.Unlock()
	if e == nil {
		return
	}
	e.mu.Lock()
	if e.users > 0 || e.dead {
		// In use: mark for release when users drain.
		e.revoke = true
		e.mu.Unlock()
		return
	}
	e.mu.Unlock()
	c.dropGlobal(e)
}

// FlushAll releases every cached, currently unused global lock.
func (c *Clerk) FlushAll() {
	c.mu.Lock()
	es := make([]*entry, 0, len(c.entries))
	for _, e := range c.entries {
		es = append(es, e)
	}
	c.mu.Unlock()
	for _, e := range es {
		c.ReleaseGlobal(e.id)
	}
}

// Holding reports whether the clerk currently caches a grant on id covering
// class.
func (c *Clerk) Holding(id uint64, class Class) bool {
	c.mu.Lock()
	e := c.entries[id]
	c.mu.Unlock()
	if e == nil {
		return false
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.has && !e.dead && covers(e.class, class)
}

// Close releases all locks and stops the renewal loop.
func (c *Clerk) Close() {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return
	}
	c.closed = true
	c.mu.Unlock()
	if c.renewStop != nil {
		close(c.renewStop)
		c.renewWG.Wait()
	}
	c.FlushAll()
}
