package lockservice

import (
	"github.com/aerie-fs/aerie/internal/rpc"
	"github.com/aerie-fs/aerie/internal/wire"
)

// RPC method and callback numbers (range 0x100 is reserved for the lock
// service).
const (
	MethodAcquire = 0x101
	MethodRelease = 0x102
	MethodRenew   = 0x103

	// CallbackRevoke asks a client to release a lock.
	CallbackRevoke = 0x181
)

// Serve creates a Service wired to srv: handlers registered, revocations
// delivered via the server's callback channel. cfg.Revoke is overridden.
func Serve(srv *rpc.Server, cfg Config) *Service {
	cfg.Revoke = func(holder uint64, lockID uint64, wanted Class) {
		w := wire.NewWriter(16)
		w.U64(lockID)
		w.U8(uint8(wanted))
		srv.Callback(holder, CallbackRevoke, w.Bytes())
	}
	svc := New(cfg)
	srv.Register(MethodAcquire, func(client uint64, req []byte) ([]byte, error) {
		r := wire.NewReader(req)
		id := r.U64()
		class := Class(r.U8())
		hier := r.Bool()
		if err := r.Finish(); err != nil {
			return nil, err
		}
		if err := svc.Acquire(client, id, class, hier); err != nil {
			return nil, err
		}
		return nil, nil
	})
	srv.Register(MethodRelease, func(client uint64, req []byte) ([]byte, error) {
		r := wire.NewReader(req)
		id := r.U64()
		if err := r.Finish(); err != nil {
			return nil, err
		}
		if err := svc.Release(client, id); err != nil {
			return nil, err
		}
		return nil, nil
	})
	srv.Register(MethodRenew, func(client uint64, _ []byte) ([]byte, error) {
		svc.Renew(client)
		return nil, nil
	})
	return svc
}
