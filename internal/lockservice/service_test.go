package lockservice

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"testing/quick"
	"time"
)

func TestCompatibilityMatrix(t *testing.T) {
	want := map[[2]Class]bool{
		{IS, IS}: true, {IS, IX}: true, {IS, S}: true, {IS, X}: false,
		{IX, IX}: true, {IX, S}: false, {IX, X}: false,
		{S, S}: true, {S, X}: false,
		{X, X}: false,
	}
	for pair, ok := range want {
		if Compatible(pair[0], pair[1]) != ok {
			t.Errorf("Compatible(%v,%v) != %v", pair[0], pair[1], ok)
		}
		if Compatible(pair[1], pair[0]) != ok {
			t.Errorf("matrix not symmetric at (%v,%v)", pair[1], pair[0])
		}
	}
}

func TestCoversAndMerge(t *testing.T) {
	if !covers(X, S) || !covers(X, IX) || !covers(S, IS) || !covers(IX, IS) {
		t.Fatal("covers lattice wrong")
	}
	if covers(S, X) || covers(IX, S) || covers(IS, IX) {
		t.Fatal("covers grants too much")
	}
	if merge(S, IX) != X {
		t.Fatalf("merge(S,IX) = %v, want X", merge(S, IX))
	}
	if merge(IS, S) != S || merge(X, IS) != X {
		t.Fatal("merge of comparable classes wrong")
	}
}

func TestAcquireReadersShareWritersExclude(t *testing.T) {
	svc := New(Config{Lease: time.Minute, AcquireTimeout: 200 * time.Millisecond})
	if err := svc.Acquire(1, 10, S, false); err != nil {
		t.Fatal(err)
	}
	if err := svc.Acquire(2, 10, S, false); err != nil {
		t.Fatalf("second reader: %v", err)
	}
	if err := svc.Acquire(3, 10, X, false); !errors.Is(err, ErrTimeout) {
		t.Fatalf("writer vs readers: %v", err)
	}
	_ = svc.Release(1, 10)
	_ = svc.Release(2, 10)
	if err := svc.Acquire(3, 10, X, false); err != nil {
		t.Fatalf("writer after releases: %v", err)
	}
	if err := svc.Acquire(1, 10, S, false); !errors.Is(err, ErrTimeout) {
		t.Fatalf("reader vs writer: %v", err)
	}
}

func TestIntentCompatibilityOnServer(t *testing.T) {
	svc := New(Config{Lease: time.Minute, AcquireTimeout: 100 * time.Millisecond})
	if err := svc.Acquire(1, 10, IX, false); err != nil {
		t.Fatal(err)
	}
	if err := svc.Acquire(2, 10, IX, false); err != nil {
		t.Fatalf("IX+IX should coexist: %v", err)
	}
	if err := svc.Acquire(3, 10, S, false); !errors.Is(err, ErrTimeout) {
		t.Fatalf("S vs IX should conflict: %v", err)
	}
	if err := svc.Acquire(3, 10, IS, false); err != nil {
		t.Fatalf("IS vs IX should coexist: %v", err)
	}
}

func TestUpgradeSameClient(t *testing.T) {
	svc := New(Config{Lease: time.Minute, AcquireTimeout: 100 * time.Millisecond})
	if err := svc.Acquire(1, 10, S, false); err != nil {
		t.Fatal(err)
	}
	if err := svc.Acquire(1, 10, X, false); err != nil {
		t.Fatalf("self-upgrade with no other holders: %v", err)
	}
	held, _ := svc.Holds(1, 10, X)
	if !held {
		t.Fatal("upgrade did not stick")
	}
	// Upgrade blocked by another reader.
	if err := svc.Release(1, 10); err != nil {
		t.Fatal(err)
	}
	_ = svc.Acquire(1, 10, S, false)
	_ = svc.Acquire(2, 10, S, false)
	if err := svc.Acquire(1, 10, X, false); !errors.Is(err, ErrTimeout) {
		t.Fatalf("upgrade past other reader: %v", err)
	}
}

func TestRevocationCallbackDelivered(t *testing.T) {
	var revoked atomic.Int64
	var mu sync.Mutex
	var got []uint64
	svc := New(Config{
		Lease:          time.Minute,
		AcquireTimeout: 5 * time.Second,
		Revoke: func(holder, lockID uint64, wanted Class) {
			mu.Lock()
			got = append(got, holder)
			mu.Unlock()
			revoked.Add(1)
		},
	})
	_ = svc.Acquire(1, 10, S, false)
	done := make(chan error, 1)
	go func() { done <- svc.Acquire(2, 10, X, false) }()
	// Wait for the revoke, then release as a cooperative client would.
	deadline := time.After(3 * time.Second)
	for revoked.Load() == 0 {
		select {
		case <-deadline:
			t.Fatal("revoke never delivered")
		default:
			time.Sleep(time.Millisecond)
		}
	}
	_ = svc.Release(1, 10)
	if err := <-done; err != nil {
		t.Fatalf("acquire after revoke+release: %v", err)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(got) == 0 || got[0] != 1 {
		t.Fatalf("revocations = %v", got)
	}
}

func TestLeaseExpiryBreaksDeadHolder(t *testing.T) {
	expired := make(chan uint64, 1)
	svc := New(Config{
		Lease:          30 * time.Millisecond,
		AcquireTimeout: 5 * time.Second,
		OnExpire:       func(client uint64) { expired <- client },
	})
	_ = svc.Acquire(1, 10, X, false)
	// Client 1 never renews; client 2 must eventually win.
	start := time.Now()
	if err := svc.Acquire(2, 10, X, false); err != nil {
		t.Fatal(err)
	}
	if time.Since(start) < 20*time.Millisecond {
		t.Fatal("acquired before lease could expire")
	}
	select {
	case c := <-expired:
		if c != 1 {
			t.Fatalf("expired client = %d", c)
		}
	case <-time.After(time.Second):
		t.Fatal("expiry hook never fired")
	}
}

func TestRenewKeepsLeaseAlive(t *testing.T) {
	svc := New(Config{Lease: 50 * time.Millisecond, AcquireTimeout: 120 * time.Millisecond})
	_ = svc.Acquire(1, 10, X, false)
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		t := time.NewTicker(10 * time.Millisecond)
		defer t.Stop()
		for {
			select {
			case <-t.C:
				svc.Renew(1)
			case <-stop:
				return
			}
		}
	}()
	if err := svc.Acquire(2, 10, X, false); !errors.Is(err, ErrTimeout) {
		t.Fatalf("renewed lease was stolen: %v", err)
	}
	close(stop)
	wg.Wait()
}

func TestReleaseAllFreesEverything(t *testing.T) {
	svc := New(Config{Lease: time.Minute, AcquireTimeout: 100 * time.Millisecond})
	for id := uint64(1); id <= 5; id++ {
		if err := svc.Acquire(1, id, X, false); err != nil {
			t.Fatal(err)
		}
	}
	svc.ReleaseAll(1)
	for id := uint64(1); id <= 5; id++ {
		if err := svc.Acquire(2, id, X, false); err != nil {
			t.Fatalf("lock %d not freed: %v", id, err)
		}
	}
}

func TestReleaseNotHeld(t *testing.T) {
	svc := New(Config{})
	if err := svc.Release(1, 10); !errors.Is(err, ErrNotHeld) {
		t.Fatalf("want ErrNotHeld, got %v", err)
	}
}

func TestHoldsReflectsHierFlag(t *testing.T) {
	svc := New(Config{Lease: time.Minute})
	_ = svc.Acquire(1, 10, X, true)
	held, hier := svc.Holds(1, 10, X)
	if !held || !hier {
		t.Fatalf("held=%v hier=%v", held, hier)
	}
	held, _ = svc.Holds(1, 10, S) // X covers S
	if !held {
		t.Fatal("X should cover S")
	}
	if held, _ := svc.Holds(2, 10, S); held {
		t.Fatal("stranger holds nothing")
	}
}

func TestShutdownFailsAcquires(t *testing.T) {
	svc := New(Config{Lease: time.Minute, AcquireTimeout: 5 * time.Second})
	_ = svc.Acquire(1, 10, X, false)
	done := make(chan error, 1)
	go func() { done <- svc.Acquire(2, 10, X, false) }()
	time.Sleep(10 * time.Millisecond)
	svc.Shutdown()
	if err := <-done; !errors.Is(err, ErrShutdown) {
		t.Fatalf("pending acquire after shutdown: %v", err)
	}
	if err := svc.Acquire(3, 11, S, false); !errors.Is(err, ErrShutdown) {
		t.Fatalf("new acquire after shutdown: %v", err)
	}
}

// Property: for random acquire/release schedules, the service never grants
// incompatible classes to different clients simultaneously.
func TestQuickNoIncompatibleGrants(t *testing.T) {
	f := func(ops []uint16) bool {
		svc := New(Config{Lease: time.Minute, AcquireTimeout: time.Millisecond})
		type key struct {
			client uint64
			id     uint64
		}
		held := map[key]Class{}
		for _, op := range ops {
			client := uint64(op)%3 + 1
			id := uint64(op>>2)%2 + 10
			class := Class(op>>4) % 4
			k := key{client, id}
			if op%2 == 0 {
				err := svc.Acquire(client, id, class, false)
				if err == nil {
					if cur, ok := held[k]; ok {
						held[k] = merge(cur, class)
					} else {
						held[k] = class
					}
				}
			} else if _, ok := held[k]; ok {
				if err := svc.Release(client, id); err != nil {
					return false
				}
				delete(held, k)
			}
			// Invariant check across clients per lock.
			for a, ca := range held {
				for b, cb := range held {
					if a.id == b.id && a.client != b.client && !Compatible(ca, cb) {
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
