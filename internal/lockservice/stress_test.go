package lockservice

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestExpireFiresOncePerClient: a client holding many locks stops renewing;
// concurrent Acquires on those locks all observe the expiry, but OnExpire
// must fire exactly once — the TFS drop-client hook is not idempotent-free.
func TestExpireFiresOncePerClient(t *testing.T) {
	var fires atomic.Int64
	s := New(Config{
		Lease:          30 * time.Millisecond,
		AcquireTimeout: 5 * time.Second,
		OnExpire:       func(client uint64) { fires.Add(1) },
	})
	const dead, nLocks = uint64(1), 16
	for id := uint64(0); id < nLocks; id++ {
		if err := s.Acquire(dead, id, X, false); err != nil {
			t.Fatalf("acquire: %v", err)
		}
	}
	// Let the lease lapse, then hammer every lock from other clients at
	// once; each Acquire reaps, but only one may claim the hook.
	time.Sleep(60 * time.Millisecond)
	var wg sync.WaitGroup
	for c := uint64(2); c < 6; c++ {
		for id := uint64(0); id < nLocks; id++ {
			wg.Add(1)
			go func(c, id uint64) {
				defer wg.Done()
				if err := s.Acquire(c, id, S, false); err != nil {
					t.Errorf("client %d lock %d: %v", c, id, err)
				}
			}(c, id)
		}
	}
	wg.Wait()
	if got := fires.Load(); got != 1 {
		t.Fatalf("OnExpire fired %d times for one dead client, want 1", got)
	}
	if held, _ := s.Holds(dead, 0, IS); held {
		t.Fatal("dead client still holds a lock after expiry")
	}
}

// TestExpireSweepsUntouchedLocks: expiry of a client observed on one lock
// must also reap its grants on locks nobody ever touches again, so a
// conflicting Acquire elsewhere is enough to clear all the dead client's
// state.
func TestExpireSweepsUntouchedLocks(t *testing.T) {
	s := New(Config{Lease: 20 * time.Millisecond, AcquireTimeout: 2 * time.Second})
	const dead = uint64(1)
	for id := uint64(0); id < 8; id++ {
		if err := s.Acquire(dead, id, X, false); err != nil {
			t.Fatalf("acquire: %v", err)
		}
	}
	time.Sleep(40 * time.Millisecond)
	// Touch only lock 0.
	if err := s.Acquire(2, 0, X, false); err != nil {
		t.Fatalf("acquire after expiry: %v", err)
	}
	leaked := 0
	for _, d := range s.doms {
		d.mu.Lock()
		for _, st := range d.locks {
			if st.holders[dead] != nil {
				leaked++
			}
		}
		d.mu.Unlock()
	}
	if leaked != 0 {
		t.Fatalf("dead client's grants leaked on %d untouched locks", leaked)
	}
}

// TestExpireClientForced: ExpireClient drops everything immediately and
// fires the hook once; a second call is a no-op.
func TestExpireClientForced(t *testing.T) {
	var fires atomic.Int64
	s := New(Config{Lease: time.Hour, OnExpire: func(uint64) { fires.Add(1) }})
	for id := uint64(0); id < 4; id++ {
		if err := s.Acquire(7, id, X, true); err != nil {
			t.Fatalf("acquire: %v", err)
		}
	}
	s.ExpireClient(7)
	s.ExpireClient(7)
	if got := fires.Load(); got != 1 {
		t.Fatalf("OnExpire fired %d times, want 1", got)
	}
	for id := uint64(0); id < 4; id++ {
		if held, _ := s.Holds(7, id, IS); held {
			t.Fatalf("lock %d still held after ExpireClient", id)
		}
	}
	// The client can come back: a fresh acquire opens a new episode.
	if err := s.Acquire(7, 0, X, false); err != nil {
		t.Fatalf("re-acquire: %v", err)
	}
	s.ExpireClient(7)
	if got := fires.Load(); got != 2 {
		t.Fatalf("OnExpire fired %d times after new episode, want 2", got)
	}
}

// TestReleaseAllExpiryRace: concurrent ReleaseAll (the disconnect path) and
// lease expiry must not double-fire OnExpire or corrupt state. Run with
// -race; failures show up as data races or a fire count > 1 per episode.
func TestReleaseAllExpiryRace(t *testing.T) {
	for round := 0; round < 20; round++ {
		var fires atomic.Int64
		s := New(Config{
			Lease:          10 * time.Millisecond,
			AcquireTimeout: 2 * time.Second,
			OnExpire:       func(client uint64) { fires.Add(1) },
		})
		const dead = uint64(1)
		for id := uint64(0); id < 8; id++ {
			if err := s.Acquire(dead, id, X, false); err != nil {
				t.Fatalf("acquire: %v", err)
			}
		}
		time.Sleep(15 * time.Millisecond)
		var wg sync.WaitGroup
		wg.Add(2)
		go func() {
			defer wg.Done()
			s.ReleaseAll(dead)
		}()
		go func() {
			defer wg.Done()
			for id := uint64(0); id < 8; id++ {
				_ = s.Acquire(2, id, X, false)
			}
		}()
		wg.Wait()
		if got := fires.Load(); got > 1 {
			t.Fatalf("round %d: OnExpire fired %d times, want <=1", round, got)
		}
	}
}

// TestConcurrentChaos hammers the service from many clients doing
// acquire/release/renew/expire concurrently. It asserts no deadlock, no
// panic, and (under -race) no data races; mutual exclusion of X grants is
// checked with a per-lock owner word.
func TestConcurrentChaos(t *testing.T) {
	s := New(Config{
		// Long lease: expiry semantics are covered above; here leases must
		// not lapse inside a critical section or the owner check would flake.
		Lease:          2 * time.Second,
		AcquireTimeout: 5 * time.Second,
		Revoke:         func(holder, lockID uint64, wanted Class) {},
	})
	const nClients, nLocks, iters = 8, 4, 50
	owners := make([]atomic.Uint64, nLocks)
	var wg sync.WaitGroup
	for c := uint64(1); c <= nClients; c++ {
		wg.Add(1)
		go func(c uint64) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				id := uint64((int(c) + i) % nLocks)
				if err := s.Acquire(c, id, X, false); err != nil {
					continue // timeout under contention is legal
				}
				if !owners[id].CompareAndSwap(0, c) {
					t.Errorf("lock %d: X grant to %d while held by %d", id, c, owners[id].Load())
				}
				owners[id].Store(0)
				switch i % 3 {
				case 0:
					_ = s.Release(c, id)
				case 1:
					s.Renew(c)
					_ = s.Release(c, id)
				default:
					s.ReleaseAll(c)
				}
			}
		}(c)
	}
	wg.Wait()
	s.Shutdown()
	if err := s.Acquire(99, 0, S, false); err != ErrShutdown {
		t.Fatalf("acquire after shutdown: %v, want ErrShutdown", err)
	}
}
