package lockservice

import (
	"sync"
	"testing"
	"time"

	"github.com/aerie-fs/aerie/internal/rpc"
)

// harness wires a Service and N clerks over the in-process transport, the
// way the TFS and libFS sessions do.
type harness struct {
	srv *rpc.Server
	svc *Service
}

func newHarness(t *testing.T, cfg Config) *harness {
	t.Helper()
	srv := rpc.NewServer()
	if cfg.Lease == 0 {
		cfg.Lease = time.Minute
	}
	if cfg.AcquireTimeout == 0 {
		cfg.AcquireTimeout = 5 * time.Second
	}
	svc := Serve(srv, cfg)
	return &harness{srv: srv, svc: svc}
}

func (h *harness) newClerk(t *testing.T) (*Clerk, rpc.Client) {
	t.Helper()
	var clerk *Clerk
	rc := rpc.DialInProc(h.srv, func(method uint32, payload []byte) {
		clerk.HandleCallback(method, payload)
	}, nil, nil)
	clerk = NewClerk(rc, ClerkConfig{})
	t.Cleanup(func() {
		clerk.Close()
		rc.Close()
	})
	return clerk, rc
}

func TestClerkCachesGrantAcrossAcquires(t *testing.T) {
	h := newHarness(t, Config{})
	c, _ := h.newClerk(t)
	if err := c.Acquire(10, X, false); err != nil {
		t.Fatal(err)
	}
	c.Release(10, X)
	if err := c.Acquire(10, X, false); err != nil {
		t.Fatal(err)
	}
	c.Release(10, X)
	if c.GlobalCalls != 1 {
		t.Fatalf("global calls = %d, want 1 (second acquire local)", c.GlobalCalls)
	}
	if c.LocalHits != 1 {
		t.Fatalf("local hits = %d", c.LocalHits)
	}
}

func TestClerkLocalReadersShare(t *testing.T) {
	h := newHarness(t, Config{})
	c, _ := h.newClerk(t)
	if err := c.Acquire(10, S, false); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- c.Acquire(10, S, false) }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("second local reader blocked")
	}
	c.Release(10, S)
	c.Release(10, S)
}

func TestClerkLocalWriterExcludes(t *testing.T) {
	h := newHarness(t, Config{})
	c, _ := h.newClerk(t)
	if err := c.Acquire(10, X, false); err != nil {
		t.Fatal(err)
	}
	got := make(chan struct{})
	go func() {
		_ = c.Acquire(10, X, false)
		close(got)
	}()
	select {
	case <-got:
		t.Fatal("second local writer admitted concurrently")
	case <-time.After(50 * time.Millisecond):
	}
	c.Release(10, X)
	select {
	case <-got:
	case <-time.After(2 * time.Second):
		t.Fatal("second writer never admitted after release")
	}
	c.Release(10, X)
}

func TestRevocationShipsAndReleases(t *testing.T) {
	h := newHarness(t, Config{})
	a, _ := h.newClerk(t)
	b, _ := h.newClerk(t)
	var flushed []uint64
	var mu sync.Mutex
	a.OnRelease(func(id uint64) {
		mu.Lock()
		flushed = append(flushed, id)
		mu.Unlock()
	})
	if err := a.Acquire(10, X, false); err != nil {
		t.Fatal(err)
	}
	a.Release(10, X) // cached, still held globally
	if err := b.Acquire(10, X, false); err != nil {
		t.Fatalf("b acquire with revocation: %v", err)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(flushed) != 1 || flushed[0] != 10 {
		t.Fatalf("flush hook calls = %v", flushed)
	}
	if a.Holding(10, S) {
		t.Fatal("a still caches revoked lock")
	}
}

func TestRevocationWaitsForActiveUser(t *testing.T) {
	h := newHarness(t, Config{})
	a, _ := h.newClerk(t)
	b, _ := h.newClerk(t)
	if err := a.Acquire(10, X, false); err != nil {
		t.Fatal(err)
	}
	// a holds the lock actively; b must block until a releases.
	done := make(chan error, 1)
	go func() { done <- b.Acquire(10, X, false) }()
	select {
	case <-done:
		t.Fatal("b acquired while a's thread held the local lock")
	case <-time.After(100 * time.Millisecond):
	}
	a.Release(10, X)
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("b never acquired after a drained")
	}
}

func TestHierarchicalSubLocks(t *testing.T) {
	h := newHarness(t, Config{})
	c, _ := h.newClerk(t)
	if err := c.Acquire(100, X, true); err != nil {
		t.Fatal(err)
	}
	calls := c.GlobalCalls
	if !c.AcquireSub(100, 101, true) {
		t.Fatal("sub lock under hier X refused")
	}
	if !c.AcquireSub(100, 102, false) {
		t.Fatal("read sub lock refused")
	}
	if c.GlobalCalls != calls {
		t.Fatal("sub locks went to the server")
	}
	c.ReleaseSub(100, 101, true)
	c.ReleaseSub(100, 102, false)
	c.Release(100, X)
}

func TestSubLockRefusedWithoutCover(t *testing.T) {
	h := newHarness(t, Config{})
	c, _ := h.newClerk(t)
	if c.AcquireSub(100, 101, false) {
		t.Fatal("sub lock granted with nothing held")
	}
	if err := c.Acquire(100, X, false); err != nil { // explicit, not hier
		t.Fatal(err)
	}
	if c.AcquireSub(100, 101, false) {
		t.Fatal("sub lock granted under non-hierarchical grant")
	}
	c.Release(100, X)
	// Hier S covers reads but not writes (fresh lock: the cached X grant
	// on 100 would otherwise upgrade the request).
	if err := c.Acquire(200, S, true); err != nil {
		t.Fatal(err)
	}
	if !c.AcquireSub(200, 201, false) {
		t.Fatal("read sub under hier S refused")
	}
	if c.AcquireSub(200, 202, true) {
		t.Fatal("write sub granted under hier S")
	}
	c.ReleaseSub(200, 201, false)
	c.Release(200, S)
}

func TestSubLockWriterExclusion(t *testing.T) {
	h := newHarness(t, Config{})
	c, _ := h.newClerk(t)
	if err := c.Acquire(100, X, true); err != nil {
		t.Fatal(err)
	}
	if !c.AcquireSub(100, 101, true) {
		t.Fatal("first sub writer refused")
	}
	admitted := make(chan bool, 1)
	go func() { admitted <- c.AcquireSub(100, 101, true) }()
	select {
	case <-admitted:
		t.Fatal("two sub writers on same sub id")
	case <-time.After(50 * time.Millisecond):
	}
	c.ReleaseSub(100, 101, true)
	select {
	case ok := <-admitted:
		if !ok {
			t.Fatal("second sub writer refused after release")
		}
	case <-time.After(2 * time.Second):
		t.Fatal("second sub writer never admitted")
	}
	c.ReleaseSub(100, 101, true)
	c.Release(100, X)
}

func TestRevocationOfHierCoverDrainsSubs(t *testing.T) {
	h := newHarness(t, Config{})
	a, _ := h.newClerk(t)
	b, _ := h.newClerk(t)
	if err := a.Acquire(100, X, true); err != nil {
		t.Fatal(err)
	}
	a.Release(100, X)
	if !a.AcquireSub(100, 101, true) {
		t.Fatal("sub refused")
	}
	done := make(chan error, 1)
	go func() { done <- b.Acquire(100, X, false) }()
	select {
	case <-done:
		t.Fatal("b acquired while a's sub lock active")
	case <-time.After(100 * time.Millisecond):
	}
	a.ReleaseSub(100, 101, true)
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("b never acquired after subs drained")
	}
	// New sub grants under the revoked cover must be refused.
	if a.AcquireSub(100, 102, false) {
		t.Fatal("sub granted under revoked cover")
	}
}

func TestReleaseGlobalVoluntary(t *testing.T) {
	h := newHarness(t, Config{})
	a, _ := h.newClerk(t)
	var flushes int
	a.OnRelease(func(uint64) { flushes++ })
	_ = a.Acquire(10, X, false)
	a.Release(10, X)
	a.ReleaseGlobal(10)
	if a.Holding(10, S) {
		t.Fatal("still cached after ReleaseGlobal")
	}
	if flushes != 1 {
		t.Fatalf("flushes = %d", flushes)
	}
	if held, _ := h.svc.Holds(1, 10, S); held {
		t.Fatal("server still shows grant")
	}
}

func TestClerkCloseReleasesEverything(t *testing.T) {
	h := newHarness(t, Config{})
	rcA := rpc.DialInProc(h.srv, nil, nil, nil)
	a := NewClerk(rcA, ClerkConfig{})
	_ = a.Acquire(10, X, false)
	_ = a.Acquire(11, S, false)
	a.Release(10, X)
	a.Release(11, S)
	a.Close()
	b, _ := h.newClerk(t)
	if err := b.Acquire(10, X, false); err != nil {
		t.Fatalf("lock 10 not released by Close: %v", err)
	}
	if err := b.Acquire(11, X, false); err != nil {
		t.Fatalf("lock 11 not released by Close: %v", err)
	}
}

func TestTwoClerksConcurrentCounters(t *testing.T) {
	// A classic mutual-exclusion smoke test: two clerks increment a shared
	// counter under the same lock; the total must be exact.
	h := newHarness(t, Config{})
	a, _ := h.newClerk(t)
	b, _ := h.newClerk(t)
	counter := 0
	var wg sync.WaitGroup
	inc := func(c *Clerk, n int) {
		defer wg.Done()
		for i := 0; i < n; i++ {
			if err := c.Acquire(10, X, false); err != nil {
				t.Error(err)
				return
			}
			counter++
			c.Release(10, X)
		}
	}
	wg.Add(2)
	go inc(a, 50)
	go inc(b, 50)
	wg.Wait()
	if counter != 100 {
		t.Fatalf("counter = %d, want 100 (lost updates)", counter)
	}
}
