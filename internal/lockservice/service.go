// Package lockservice implements Aerie's distributed concurrency control
// (§5.1, §5.3.4): a centralized lock service executing in the TFS that
// issues multiple-reader/single-writer locks named by 64-bit IDs, plus the
// client-side clerk that caches grants, issues local lightweight mutexes to
// threads, answers descendant requests under hierarchical locks, and
// responds to revocation callbacks.
//
// Lock classes follow the paper's three modes per lock — explicit (covers
// one object), hierarchical (covers the object and its descendants), and
// intent (a descendant may be locked) — each in read or write mode. For
// conflict detection these collapse onto the classic granular-locking
// classes (Gray et al.): IS, IX, S, X; the hierarchical property is carried
// on the grant so the clerk can cover descendants locally and the TFS can
// validate that a batched update was covered by a write lock.
//
// Every grant carries a lease that the clerk renews; a client that stops
// renewing (crashed or unresponsive) implicitly releases its locks, which
// bounds denial of service (§5.1). Lease expiry also implicitly discards
// the client's unshipped metadata updates: the service fires an expiry hook
// the TFS uses to drop that client's state.
//
// When the trusted service is sharded, the lock table is partitioned into
// domains (Config.Domains/DomainOf): each shard's objects map to their own
// domain with an independent mutex and expiry registry, so lock traffic on
// one shard never contends on another shard's table. The wire protocol is
// unchanged — domains are a service-internal striping, invisible to clerks.
package lockservice

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"github.com/aerie-fs/aerie/internal/obs"
)

// Class is a lock class in the granular-locking lattice.
type Class uint8

// Lock classes.
const (
	// IS: intent to read a descendant.
	IS Class = iota
	// IX: intent to write a descendant.
	IX
	// S: shared (read) on this object (and descendants if hierarchical).
	S
	// X: exclusive (write) on this object (and descendants if
	// hierarchical).
	X
)

func (c Class) String() string {
	switch c {
	case IS:
		return "IS"
	case IX:
		return "IX"
	case S:
		return "S"
	case X:
		return "X"
	}
	return fmt.Sprintf("Class(%d)", uint8(c))
}

// Compatible reports whether two classes held by different clients may
// coexist on the same lock.
func Compatible(a, b Class) bool {
	switch a {
	case IS:
		return b != X
	case IX:
		return b == IS || b == IX
	case S:
		return b == IS || b == S
	case X:
		return false
	}
	return false
}

// covers reports whether holding `have` satisfies a request for `want` by
// the same client.
func covers(have, want Class) bool {
	if have == want {
		return true
	}
	switch have {
	case X:
		return true
	case S:
		return want == IS
	case IX:
		return want == IS
	}
	return false
}

// merge returns the weakest class that covers both.
func merge(a, b Class) Class {
	if covers(a, b) {
		return a
	}
	if covers(b, a) {
		return b
	}
	// S+IX (and any other incomparable pair) escalate to X.
	return X
}

// Errors.
var (
	ErrTimeout  = errors.New("lockservice: acquire timed out")
	ErrNotHeld  = errors.New("lockservice: lock not held")
	ErrShutdown = errors.New("lockservice: service shut down")
)

// RevokeFn is called (without internal locks held) to ask a holder to
// release a lock that a conflicting request needs. Delivery is best-effort;
// an unresponsive holder loses the lock at lease expiry.
type RevokeFn func(holder uint64, lockID uint64, wanted Class)

// Config tunes the service.
type Config struct {
	// Lease is the grant lease duration; clerks renew at Lease/3.
	Lease time.Duration
	// AcquireTimeout bounds how long Acquire waits before ErrTimeout.
	AcquireTimeout time.Duration
	// Revoke delivers revocation callbacks; may be nil.
	Revoke RevokeFn
	// OnExpire is invoked when a client loses a grant to lease expiry;
	// may be nil. The TFS uses it to discard the client's unshipped
	// batched updates. With multiple domains it may fire once per domain
	// holding expired grants; the hook must be idempotent.
	OnExpire func(client uint64)
	// Obs, when non-nil, receives the lock.wait histogram (time spent in
	// Acquire) and lock.acquires / lock.contended / lock.revocations /
	// lock.expirations counters.
	Obs *obs.Sink

	// Domains partitions the lock table: requests on locks in different
	// domains never touch the same mutex or expiry registry. 0 or 1 keeps
	// a single table. The sharded TFS passes one domain per shard.
	Domains int
	// DomainOf maps a lock ID to its domain in [0, Domains). nil (or any
	// out-of-range result) maps to domain 0; the TFS supplies the shard
	// placement table here so each shard's locks land in its own domain.
	DomainOf func(id uint64) int
}

type grant struct {
	class    Class
	hier     bool
	expiry   time.Time
	revoking bool // a revoke callback for this grant has been sent
}

type lockState struct {
	holders map[uint64]*grant
	waiters []chan struct{}
}

// clientExpiry tracks a client's grants across all locks of one domain so
// lease expiry fires the OnExpire hook exactly once per expiry episode (per
// domain) — not once per lock, and not concurrently from racing Acquires.
type clientExpiry struct {
	grants int
	// fired marks that OnExpire was claimed for the current episode; a
	// new grant opens a new episode.
	fired bool
}

// domain is one stripe of the lock table. All state a request touches lives
// in the domain its lock ID maps to; the only cross-domain operations are
// the whole-client sweeps (ReleaseAll, Renew, ExpireClient, Shutdown).
type domain struct {
	mu       sync.Mutex
	locks    map[uint64]*lockState
	byClient map[uint64]*clientExpiry
	down     bool
}

// Service is the lock server. All methods are safe for concurrent use.
type Service struct {
	cfg  Config
	doms []*domain

	// Stats (updated atomically).
	Acquires    int64
	Revocations int64
	Expirations int64

	// Metrics resolved once at construction; all nil when cfg.Obs is nil.
	obsWait        *obs.Histogram
	obsAcquires    *obs.Counter
	obsContended   *obs.Counter
	obsRevocations *obs.Counter
	obsExpirations *obs.Counter
}

// New creates a lock service.
func New(cfg Config) *Service {
	if cfg.Lease == 0 {
		cfg.Lease = 2 * time.Second
	}
	if cfg.AcquireTimeout == 0 {
		cfg.AcquireTimeout = 10 * time.Second
	}
	n := cfg.Domains
	if n < 1 {
		n = 1
	}
	doms := make([]*domain, n)
	for i := range doms {
		doms[i] = &domain{
			locks:    make(map[uint64]*lockState),
			byClient: make(map[uint64]*clientExpiry),
		}
	}
	return &Service{
		cfg:            cfg,
		doms:           doms,
		obsWait:        cfg.Obs.Histogram("lock.wait"),
		obsAcquires:    cfg.Obs.Counter("lock.acquires"),
		obsContended:   cfg.Obs.Counter("lock.contended"),
		obsRevocations: cfg.Obs.Counter("lock.revocations"),
		obsExpirations: cfg.Obs.Counter("lock.expirations"),
	}
}

// dom returns the domain owning lock id.
func (s *Service) dom(id uint64) *domain {
	if len(s.doms) == 1 || s.cfg.DomainOf == nil {
		return s.doms[0]
	}
	k := s.cfg.DomainOf(id)
	if k < 0 || k >= len(s.doms) {
		k = 0
	}
	return s.doms[k]
}

func (d *domain) state(id uint64) *lockState {
	st := d.locks[id]
	if st == nil {
		st = &lockState{holders: make(map[uint64]*grant)}
		d.locks[id] = st
	}
	return st
}

// reapExpiredLocked scans st for holders with expired leases. Each one
// triggers a domain-wide sweep of that client's expired grants (a client
// that stopped renewing loses all its leases together, not just the ones
// on locks somebody happens to touch). Returns the clients whose OnExpire
// hook the caller must fire after releasing d.mu; the exactly-once claim
// happens here, under the mutex, so racing Acquires can never both fire
// for the same client.
func (s *Service) reapExpiredLocked(d *domain, st *lockState, now time.Time) []uint64 {
	var fire []uint64
	for client, g := range st.holders {
		if now.After(g.expiry) {
			if s.sweepClientLocked(d, client, now, st) {
				fire = append(fire, client)
			}
		}
	}
	return fire
}

// sweepClientLocked removes every expired grant client holds, on any lock
// of domain d, and reports whether the expiry hook should fire. keep (may
// be nil) is a lockState the caller still references; it is never deleted
// from d.locks even if emptied. The hook is claimed at most once per expiry
// episode: a new grant after the claim opens a new episode.
func (s *Service) sweepClientLocked(d *domain, client uint64, now time.Time, keep *lockState) bool {
	removed := 0
	for id, st := range d.locks {
		g := st.holders[client]
		if g == nil || !now.After(g.expiry) {
			continue
		}
		delete(st.holders, client)
		removed++
		atomic.AddInt64(&s.Expirations, 1)
		s.obsExpirations.Inc()
		wakeLocked(st)
		if st != keep && len(st.holders) == 0 && len(st.waiters) == 0 {
			delete(d.locks, id)
		}
	}
	if removed == 0 {
		return false
	}
	ce := d.byClient[client]
	if ce == nil {
		return false
	}
	ce.grants -= removed
	fire := !ce.fired
	ce.fired = true
	if ce.grants <= 0 {
		delete(d.byClient, client)
	}
	return fire
}

// ExpireClient force-expires every grant held by client, as if its lease
// had lapsed, firing OnExpire (at most once per domain holding grants) if
// it held anything. The crash-simulation harness uses it to model a crashed
// client whose lease runs out without waiting wall-clock lease time.
func (s *Service) ExpireClient(client uint64) {
	var fire []uint64
	for _, d := range s.doms {
		d.mu.Lock()
		// A force-expiry treats every grant as already past its lease.
		for _, st := range d.locks {
			if g := st.holders[client]; g != nil {
				g.expiry = time.Time{}
			}
		}
		if s.sweepClientLocked(d, client, time.Now(), nil) {
			fire = append(fire, client)
		}
		d.mu.Unlock()
	}
	s.fireExpiry(fire)
}

func wakeLocked(st *lockState) {
	for _, ch := range st.waiters {
		select {
		case ch <- struct{}{}:
		default:
		}
	}
}

// Acquire grants client the lock id in the given class (hier marks the
// grant as hierarchical). It blocks — revoking conflicting holders — until
// granted, the configured timeout elapses, or the service shuts down.
// Re-acquiring merges classes (upgrade), renewing the lease.
func (s *Service) Acquire(client uint64, id uint64, class Class, hier bool) error {
	obsT0 := s.obsWait.StartTimer()
	defer func() { s.obsWait.ObserveSince(obsT0) }()
	d := s.dom(id)
	deadline := time.Now().Add(s.cfg.AcquireTimeout)
	var waiter chan struct{}
	defer func() {
		if waiter != nil {
			d.mu.Lock()
			removeWaiterLocked(d, id, waiter)
			d.mu.Unlock()
		}
	}()
	for {
		now := time.Now()
		d.mu.Lock()
		if d.down {
			d.mu.Unlock()
			return ErrShutdown
		}
		st := d.state(id)
		expired := s.reapExpiredLocked(d, st, now)
		want := class
		if g := st.holders[client]; g != nil {
			want = merge(g.class, class)
		}
		var conflicts []uint64
		for other, g := range st.holders {
			if other == client {
				continue
			}
			if !Compatible(want, g.class) {
				if !g.revoking {
					g.revoking = true
					conflicts = append(conflicts, other)
				} else {
					conflicts = append(conflicts, 0) // already asked; just wait
				}
			}
		}
		if len(conflicts) == 0 {
			g := st.holders[client]
			if g == nil {
				g = &grant{}
				st.holders[client] = g
				ce := d.byClient[client]
				if ce == nil {
					ce = &clientExpiry{}
					d.byClient[client] = ce
				}
				ce.grants++
				ce.fired = false
			} else if ce := d.byClient[client]; ce != nil {
				// A live re-acquire opens a new expiry episode.
				ce.fired = false
			}
			g.class = want
			g.hier = g.hier || hier
			g.expiry = now.Add(s.cfg.Lease)
			g.revoking = false
			atomic.AddInt64(&s.Acquires, 1)
			s.obsAcquires.Inc()
			d.mu.Unlock()
			s.fireExpiry(expired)
			return nil
		}
		if waiter == nil {
			waiter = make(chan struct{}, 1)
			s.obsContended.Inc()
		}
		st.waiters = append(st.waiters, waiter)
		if s.cfg.Revoke != nil {
			// Count while still under d.mu; the callbacks below must run
			// unlocked (they re-enter clerk state), and bare counter
			// increments out there race between dispatch goroutines.
			for _, holder := range conflicts {
				if holder != 0 {
					atomic.AddInt64(&s.Revocations, 1)
					s.obsRevocations.Inc()
				}
			}
		}
		d.mu.Unlock()
		s.fireExpiry(expired)
		for _, holder := range conflicts {
			if holder != 0 && s.cfg.Revoke != nil {
				s.cfg.Revoke(holder, id, want)
			}
		}
		// Wait for a release/expiry signal, polling so lease expiry of a
		// dead holder is eventually observed.
		poll := s.cfg.Lease / 4
		if poll <= 0 || poll > 50*time.Millisecond {
			poll = 50 * time.Millisecond
		}
		select {
		case <-waiter:
		case <-time.After(poll):
		}
		d.mu.Lock()
		removeWaiterLocked(d, id, waiter)
		d.mu.Unlock()
		if time.Now().After(deadline) {
			return fmt.Errorf("%w: lock %#x class %v", ErrTimeout, id, class)
		}
	}
}

func removeWaiterLocked(d *domain, id uint64, ch chan struct{}) {
	st := d.locks[id]
	if st == nil {
		return
	}
	for i, w := range st.waiters {
		if w == ch {
			st.waiters = append(st.waiters[:i], st.waiters[i+1:]...)
			return
		}
	}
}

func (s *Service) fireExpiry(clients []uint64) {
	if s.cfg.OnExpire == nil {
		return
	}
	for _, c := range clients {
		s.cfg.OnExpire(c)
	}
}

// Release drops client's grant on id.
func (s *Service) Release(client uint64, id uint64) error {
	d := s.dom(id)
	d.mu.Lock()
	defer d.mu.Unlock()
	st := d.locks[id]
	if st == nil || st.holders[client] == nil {
		return fmt.Errorf("%w: client %d lock %#x", ErrNotHeld, client, id)
	}
	delete(st.holders, client)
	dropGrantLocked(d, client, 1)
	wakeLocked(st)
	if len(st.holders) == 0 && len(st.waiters) == 0 {
		delete(d.locks, id)
	}
	return nil
}

// dropGrantLocked decrements client's tracked grant count after n voluntary
// releases (no expiry hook involved).
func dropGrantLocked(d *domain, client uint64, n int) {
	ce := d.byClient[client]
	if ce == nil {
		return
	}
	ce.grants -= n
	if ce.grants <= 0 {
		delete(d.byClient, client)
	}
}

// ReleaseAll drops every grant held by client (disconnect path).
func (s *Service) ReleaseAll(client uint64) {
	for _, d := range s.doms {
		d.mu.Lock()
		dropped := 0
		for id, st := range d.locks {
			if st.holders[client] != nil {
				delete(st.holders, client)
				dropped++
				wakeLocked(st)
				if len(st.holders) == 0 && len(st.waiters) == 0 {
					delete(d.locks, id)
				}
			}
		}
		if dropped > 0 {
			dropGrantLocked(d, client, dropped)
		}
		d.mu.Unlock()
	}
}

// Renew extends the lease on all grants held by client.
func (s *Service) Renew(client uint64) {
	now := time.Now()
	for _, d := range s.doms {
		d.mu.Lock()
		for _, st := range d.locks {
			if g := st.holders[client]; g != nil && !now.After(g.expiry) {
				g.expiry = now.Add(s.cfg.Lease)
			}
		}
		d.mu.Unlock()
	}
}

// Holds reports whether client currently holds id with a class covering
// class, and whether that grant is hierarchical. Expired grants don't count.
func (s *Service) Holds(client uint64, id uint64, class Class) (held, hier bool) {
	now := time.Now()
	d := s.dom(id)
	d.mu.Lock()
	defer d.mu.Unlock()
	st := d.locks[id]
	if st == nil {
		return false, false
	}
	g := st.holders[client]
	if g == nil || now.After(g.expiry) {
		return false, false
	}
	return covers(g.class, class), g.hier
}

// Shutdown fails all pending and future acquires.
func (s *Service) Shutdown() {
	for _, d := range s.doms {
		d.mu.Lock()
		d.down = true
		for _, st := range d.locks {
			wakeLocked(st)
		}
		d.mu.Unlock()
	}
}
