package alloc

import (
	"errors"
	"testing"

	"github.com/aerie-fs/aerie/internal/scm"
)

// TestReserveAllOrNothing checks Reserve's transactional contract: a demand
// the heap cannot cover reserves nothing, and the accounting is untouched.
func TestReserveAllOrNothing(t *testing.T) {
	b, _ := newBuddy(t)
	free := b.FreeBytes()
	// 1 MiB heap: 300 × 4 KiB ≈ 1.2 MiB cannot fit.
	demand := make([]uint64, 300)
	for i := range demand {
		demand[i] = MinBlock
	}
	if _, err := b.Reserve(demand); !errors.Is(err, ErrNoSpace) {
		t.Fatalf("oversized reserve: %v", err)
	}
	if b.FreeBytes() != free || b.ReservedBytes() != 0 {
		t.Fatalf("failed reserve leaked accounting: free %d->%d reserved %d",
			free, b.FreeBytes(), b.ReservedBytes())
	}
	// A demand with one impossible size fails the same way even when the
	// rest would fit.
	if _, err := b.Reserve([]uint64{MinBlock, 8 << 20}); !errors.Is(err, ErrTooLarge) {
		t.Fatalf("too-large reserve: %v", err)
	}
	if b.FreeBytes() != free || b.ReservedBytes() != 0 {
		t.Fatal("failed mixed reserve leaked accounting")
	}
}

// TestReservationAllocAccounting walks one reservation through its life:
// reserve moves bytes free→reserved, Alloc consumes them (committing bitmap
// bits), Release returns the surplus.
func TestReservationAllocAccounting(t *testing.T) {
	b, _ := newBuddy(t)
	free := b.FreeBytes()
	res, err := b.Reserve([]uint64{MinBlock, 2 * MinBlock, MinBlock})
	if err != nil {
		t.Fatal(err)
	}
	held := res.HeldBytes()
	if held != 4*MinBlock { // 4K + 8K + 4K
		t.Fatalf("held = %d", held)
	}
	if b.ReservedBytes() != held || b.FreeBytes() != free-held {
		t.Fatalf("reserve accounting: free %d reserved %d", b.FreeBytes(), b.ReservedBytes())
	}

	addr, err := res.Alloc(MinBlock)
	if err != nil {
		t.Fatal(err)
	}
	if res.HeldBytes() != held-MinBlock || b.ReservedBytes() != held-MinBlock {
		t.Fatalf("alloc did not consume held bytes: held %d reserved %d",
			res.HeldBytes(), b.ReservedBytes())
	}
	if res.Fallbacks() != 0 {
		t.Fatalf("covered alloc fell back: %d", res.Fallbacks())
	}

	res.Release()
	res.Release() // idempotent
	if b.ReservedBytes() != 0 {
		t.Fatalf("release left %d reserved", b.ReservedBytes())
	}
	if b.FreeBytes() != free-MinBlock {
		t.Fatalf("free after release = %d, want %d", b.FreeBytes(), free-MinBlock)
	}
	// The consumed block is a real allocation now.
	if err := b.Free(addr, MinBlock); err != nil {
		t.Fatal(err)
	}
	if b.FreeBytes() != free {
		t.Fatalf("free after returning the alloc = %d", b.FreeBytes())
	}
}

// TestReservationSplitsHeldBlocks checks that an allocation smaller than any
// held block splits one buddy-style instead of falling through to the pool.
func TestReservationSplitsHeldBlocks(t *testing.T) {
	b, _ := newBuddy(t)
	res, err := b.Reserve([]uint64{4 * MinBlock})
	if err != nil {
		t.Fatal(err)
	}
	defer res.Release()
	for i := 0; i < 4; i++ {
		if _, err := res.Alloc(MinBlock); err != nil {
			t.Fatalf("alloc %d from split: %v", i, err)
		}
	}
	if res.Fallbacks() != 0 {
		t.Fatalf("splittable allocs fell back %d times", res.Fallbacks())
	}
	if res.HeldBytes() != 0 {
		t.Fatalf("held = %d after consuming the reservation", res.HeldBytes())
	}
}

// TestReservationFallback checks the safety valve: when the reservation
// cannot cover an allocation (the demand estimate was short), the alloc
// falls through to the shared pool and the counter records it.
func TestReservationFallback(t *testing.T) {
	b, _ := newBuddy(t)
	res, err := b.Reserve([]uint64{MinBlock})
	if err != nil {
		t.Fatal(err)
	}
	defer res.Release()
	if _, err := res.Alloc(MinBlock); err != nil {
		t.Fatal(err)
	}
	if _, err := res.Alloc(MinBlock); err != nil { // not covered
		t.Fatalf("fallback alloc failed: %v", err)
	}
	if res.Fallbacks() != 1 {
		t.Fatalf("fallbacks = %d, want 1", res.Fallbacks())
	}
}

// TestReservationVolatileAcrossCrash pins the recovery contract: held blocks
// never touch the persistent bitmap, so re-attaching from the bitmap (what a
// crash does) returns every open reservation's bytes to the free lists.
func TestReservationVolatileAcrossCrash(t *testing.T) {
	mem := scm.New(scm.Config{Size: 2 << 20, TrackPersistence: true})
	b, err := Format(mem, scm.PageSize, 64*1024, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	free := b.FreeBytes()
	res, err := b.Reserve([]uint64{MinBlock, 2 * MinBlock})
	if err != nil {
		t.Fatal(err)
	}
	// Consume one block — its bits are now persistent — and leave the rest
	// held.
	if _, err := res.Alloc(MinBlock); err != nil {
		t.Fatal(err)
	}
	mem.Crash()
	b2, err := Attach(mem, scm.PageSize, 64*1024, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	if b2.ReservedBytes() != 0 {
		t.Fatalf("reservation survived the crash: %d bytes", b2.ReservedBytes())
	}
	if b2.FreeBytes() != free-MinBlock {
		t.Fatalf("free after crash = %d, want %d (only the consumed block gone)",
			b2.FreeBytes(), free-MinBlock)
	}
}
