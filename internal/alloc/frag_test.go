package alloc

import (
	"testing"
)

// TestFragStats exercises the fragmentation snapshot the aging harness
// tracks: a fresh heap is one contiguous block (index 0); poking holes into
// it shatters the free space and raises the index; coalescing frees lowers
// it back to 0.
func TestFragStats(t *testing.T) {
	b, _ := newBuddy(t)

	st := b.FragStats()
	if st.FreeBytes != 1<<20 {
		t.Fatalf("fresh free = %d", st.FreeBytes)
	}
	if st.LargestFree != 1<<20 || st.Fragments != 1 || st.Index != 0 {
		t.Fatalf("fresh heap not contiguous: %+v", st)
	}

	// Allocate every minimum block, then free every other one: free space
	// becomes all-minimum-order fragments that cannot coalesce.
	n := int((uint64(1) << 20) / MinBlock)
	addrs := make([]uint64, 0, n)
	for i := 0; i < n; i++ {
		a, err := b.Alloc(MinBlock)
		if err != nil {
			t.Fatal(err)
		}
		addrs = append(addrs, a)
	}
	for i := 0; i < n; i += 2 {
		if err := b.Free(addrs[i], MinBlock); err != nil {
			t.Fatal(err)
		}
	}
	st = b.FragStats()
	if st.LargestFree != MinBlock {
		t.Fatalf("checkerboarded heap has largest free %d, want %d", st.LargestFree, uint64(MinBlock))
	}
	if want := uint64(n / 2); st.Fragments != want {
		t.Fatalf("fragments = %d, want %d", st.Fragments, want)
	}
	if st.PerOrder[minOrder] != uint64(n/2) {
		t.Fatalf("per-order[%d] = %d, want %d", minOrder, st.PerOrder[minOrder], n/2)
	}
	wantIdx := 1 - float64(MinBlock)/float64(st.FreeBytes)
	if st.Index != wantIdx {
		t.Fatalf("index = %v, want %v", st.Index, wantIdx)
	}

	// Free the rest: coalescing must restore one contiguous block.
	for i := 1; i < n; i += 2 {
		if err := b.Free(addrs[i], MinBlock); err != nil {
			t.Fatal(err)
		}
	}
	st = b.FragStats()
	if st.LargestFree != 1<<20 || st.Fragments != 1 || st.Index != 0 {
		t.Fatalf("coalesced heap not contiguous: %+v", st)
	}
}

// TestReservationConsumedBytes pins the charge the TFS makes against a
// batch's tenant: bytes drawn through the reservation (held-serve and
// fallback alike) count; released surplus does not.
func TestReservationConsumedBytes(t *testing.T) {
	b, _ := newBuddy(t)

	r, err := b.Reserve([]uint64{MinBlock, MinBlock, 2 * MinBlock})
	if err != nil {
		t.Fatal(err)
	}
	if got := r.ConsumedBytes(); got != 0 {
		t.Fatalf("consumed before any alloc = %d", got)
	}

	// Draw one minimum block from the held set.
	if _, err := r.Alloc(MinBlock); err != nil {
		t.Fatal(err)
	}
	if got := r.ConsumedBytes(); got != MinBlock {
		t.Fatalf("consumed after held-serve = %d, want %d", got, uint64(MinBlock))
	}

	// Exhaust the held blocks, then force a fallback allocation: it must
	// count toward consumption too.
	if _, err := r.Alloc(MinBlock); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Alloc(2 * MinBlock); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Alloc(MinBlock); err != nil { // fallback
		t.Fatal(err)
	}
	if got, want := r.ConsumedBytes(), uint64(5*MinBlock); got != want {
		t.Fatalf("consumed after fallback = %d, want %d", got, want)
	}
	if r.Fallbacks() != 1 {
		t.Fatalf("fallbacks = %d, want 1", r.Fallbacks())
	}

	// Release is charge-neutral: surplus goes back without touching the
	// consumed count.
	r.Release()
	if got, want := r.ConsumedBytes(), uint64(5*MinBlock); got != want {
		t.Fatalf("consumed after release = %d, want %d", got, want)
	}
}
