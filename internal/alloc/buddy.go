// Package alloc implements the TFS's buddy storage allocator (§5.3.7): it
// carves power-of-two extents out of a partition's data area. The free-list
// structure is volatile (rebuilt at attach time), while the authoritative
// allocation state is a persistent bitmap in SCM with one bit per minimum
// block. The TFS updates the bitmap only while applying journaled operations,
// so a crash never leaks blocks that no committed operation references.
package alloc

import (
	"errors"
	"fmt"
	"math/bits"
	"sync"

	"github.com/aerie-fs/aerie/internal/faultinject"
	"github.com/aerie-fs/aerie/internal/scm"
)

// MinBlock is the smallest allocatable extent (one page, the protection
// granularity).
const MinBlock = scm.PageSize

const minOrder = 12 // log2(MinBlock)

// Errors.
var (
	ErrNoSpace  = errors.New("alloc: out of space")
	ErrBadFree  = errors.New("alloc: bad free")
	ErrTooLarge = errors.New("alloc: request exceeds heap")
)

// BitmapBytes returns the size of the persistent bitmap needed for a heap of
// heapSize bytes, rounded up to a cache line.
func BitmapBytes(heapSize uint64) uint64 {
	blocks := heapSize / MinBlock
	return (blocks/8 + scm.LineSize - 1) / scm.LineSize * scm.LineSize
}

// Buddy is a buddy allocator over [heapStart, heapStart+heapSize) with its
// allocation bitmap at bitmapAddr. Safe for concurrent use.
type Buddy struct {
	mem        scm.Space
	bitmapAddr uint64
	heapStart  uint64
	heapSize   uint64
	maxOrder   uint

	mu        sync.Mutex
	free      map[uint][]uint64 // order -> free block addresses (volatile)
	freeB     uint64            // free bytes
	reservedB uint64            // bytes held by open reservations

	faults *faultinject.Injector
}

// SetFaults installs a fault injector (nil-safe) hit on the allocation
// paths: "alloc.alloc" and "alloc.reserve".
func (b *Buddy) SetFaults(inj *faultinject.Injector) { b.faults = inj }

// Format zeroes the bitmap (everything free) and returns an attached
// allocator.
func Format(mem scm.Space, bitmapAddr, heapStart, heapSize uint64) (*Buddy, error) {
	heapSize = heapSize / MinBlock * MinBlock
	if heapSize == 0 {
		return nil, fmt.Errorf("%w: empty heap", ErrNoSpace)
	}
	if err := scm.Zero(mem, bitmapAddr, int(BitmapBytes(heapSize))); err != nil {
		return nil, err
	}
	if err := mem.Flush(bitmapAddr, int(BitmapBytes(heapSize))); err != nil {
		return nil, err
	}
	return Attach(mem, bitmapAddr, heapStart, heapSize)
}

// Attach rebuilds the volatile free lists from the persistent bitmap, e.g.
// after a crash: maximal aligned free runs are decomposed greedily into
// buddy blocks.
func Attach(mem scm.Space, bitmapAddr, heapStart, heapSize uint64) (*Buddy, error) {
	heapSize = heapSize / MinBlock * MinBlock
	b := &Buddy{
		mem:        mem,
		bitmapAddr: bitmapAddr,
		heapStart:  heapStart,
		heapSize:   heapSize,
		free:       make(map[uint][]uint64),
	}
	b.maxOrder = uint(bits.Len64(heapSize)) - 1
	if 1<<b.maxOrder > heapSize {
		b.maxOrder--
	}
	// Scan the bitmap for free runs.
	nblocks := heapSize / MinBlock
	run := uint64(0)
	runStart := uint64(0)
	for blk := uint64(0); blk <= nblocks; blk++ {
		allocated := true
		if blk < nblocks {
			var err error
			allocated, err = b.bitAt(blk)
			if err != nil {
				return nil, err
			}
		}
		if !allocated {
			if run == 0 {
				runStart = blk
			}
			run++
			continue
		}
		if run > 0 {
			b.insertRun(runStart, run)
			run = 0
		}
	}
	return b, nil
}

// insertRun decomposes a free run of blocks into maximal aligned buddy
// blocks and pushes them on the free lists.
func (b *Buddy) insertRun(startBlk, nblocks uint64) {
	blk := startBlk
	remaining := nblocks
	for remaining > 0 {
		// Largest order that is aligned at blk and fits in remaining.
		order := uint(minOrder)
		for order < b.maxOrder {
			sizeBlocks := uint64(1) << (order + 1 - minOrder)
			if blk%sizeBlocks != 0 || sizeBlocks > remaining {
				break
			}
			order++
		}
		sizeBlocks := uint64(1) << (order - minOrder)
		addr := b.heapStart + blk*MinBlock
		b.free[order] = append(b.free[order], addr)
		b.freeB += sizeBlocks * MinBlock
		blk += sizeBlocks
		remaining -= sizeBlocks
	}
}

func (b *Buddy) bitAt(blk uint64) (bool, error) {
	var buf [1]byte
	if err := b.mem.Read(b.bitmapAddr+blk/8, buf[:]); err != nil {
		return false, err
	}
	return buf[0]&(1<<(blk%8)) != 0, nil
}

// setBits marks [blk, blk+n) allocated (v=true) or free (v=false) and
// flushes the touched bitmap bytes.
func (b *Buddy) setBits(blk, n uint64, v bool) error {
	firstByte := blk / 8
	lastByte := (blk + n - 1) / 8
	buf := make([]byte, lastByte-firstByte+1)
	if err := b.mem.Read(b.bitmapAddr+firstByte, buf); err != nil {
		return err
	}
	for i := blk; i < blk+n; i++ {
		idx := i/8 - firstByte
		if v {
			buf[idx] |= 1 << (i % 8)
		} else {
			buf[idx] &^= 1 << (i % 8)
		}
	}
	return scm.WriteFlush(b.mem, b.bitmapAddr+firstByte, buf)
}

// OrderFor returns the buddy order used for a request of size bytes.
func OrderFor(size uint64) uint {
	if size <= MinBlock {
		return minOrder
	}
	o := uint(bits.Len64(size - 1))
	return o
}

// BlockSize returns the byte size of a block of the given order.
func BlockSize(order uint) uint64 { return 1 << order }

// Alloc allocates an extent of at least size bytes, returning its address.
// The extent's actual size is BlockSize(OrderFor(size)).
func (b *Buddy) Alloc(size uint64) (uint64, error) {
	order := OrderFor(size)
	if order > b.maxOrder {
		return 0, fmt.Errorf("%w: %d bytes (order %d > max %d)", ErrTooLarge, size, order, b.maxOrder)
	}
	if err := b.faults.Hit("alloc.alloc"); err != nil {
		return 0, err
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.allocLocked(order)
}

// allocLocked pops a block of the given order and commits it to the bitmap.
func (b *Buddy) allocLocked(order uint) (uint64, error) {
	addr, err := b.popLocked(order)
	if err != nil {
		return 0, err
	}
	blk := (addr - b.heapStart) / MinBlock
	n := BlockSize(order) / MinBlock
	if err := b.setBits(blk, n, true); err != nil {
		// Roll the block back onto the free list.
		b.free[order] = append(b.free[order], addr)
		return 0, err
	}
	b.freeB -= BlockSize(order)
	return addr, nil
}

// popLocked removes a free block of exactly the given order from the free
// lists, splitting a larger block if needed. No bitmap writes: the block
// stays free in persistent state until the caller commits it.
func (b *Buddy) popLocked(order uint) (uint64, error) {
	o := order
	for o <= b.maxOrder && len(b.free[o]) == 0 {
		o++
	}
	if o > b.maxOrder {
		return 0, fmt.Errorf("%w: no free block of order %d", ErrNoSpace, order)
	}
	addr := b.free[o][len(b.free[o])-1]
	b.free[o] = b.free[o][:len(b.free[o])-1]
	for o > order {
		o--
		buddy := addr + BlockSize(o)
		b.free[o] = append(b.free[o], buddy)
	}
	return addr, nil
}

// pushLocked returns a block to the free lists, coalescing with free
// buddies. It does not touch the bitmap or the byte counters.
func (b *Buddy) pushLocked(addr uint64, order uint) {
	for order < b.maxOrder {
		buddy := b.heapStart + ((addr - b.heapStart) ^ BlockSize(order))
		if !b.removeFree(order, buddy) {
			break
		}
		if buddy < addr {
			addr = buddy
		}
		order++
	}
	b.free[order] = append(b.free[order], addr)
}

// Free returns an extent previously allocated with size bytes (the original
// request size; it is rounded to the same order). Buddies are coalesced.
func (b *Buddy) Free(addr, size uint64) error {
	order := OrderFor(size)
	if addr < b.heapStart || addr+BlockSize(order) > b.heapStart+b.heapSize {
		return fmt.Errorf("%w: [%#x,+%d) outside heap", ErrBadFree, addr, size)
	}
	if (addr-b.heapStart)%BlockSize(order) != 0 {
		return fmt.Errorf("%w: %#x misaligned for order %d", ErrBadFree, addr, order)
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	blk := (addr - b.heapStart) / MinBlock
	// Double-free detection: the first block must be marked allocated.
	set, err := b.bitAt(blk)
	if err != nil {
		return err
	}
	if !set {
		return fmt.Errorf("%w: %#x already free", ErrBadFree, addr)
	}
	if err := b.setBits(blk, BlockSize(order)/MinBlock, false); err != nil {
		return err
	}
	b.freeB += BlockSize(order)
	b.pushLocked(addr, order)
	return nil
}

func (b *Buddy) removeFree(order uint, addr uint64) bool {
	list := b.free[order]
	for i, a := range list {
		if a == addr {
			list[i] = list[len(list)-1]
			b.free[order] = list[:len(list)-1]
			return true
		}
	}
	return false
}

// FreeBytes returns the total free space, excluding bytes held by open
// reservations.
func (b *Buddy) FreeBytes() uint64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.freeB
}

// ReservedBytes returns the bytes currently held by open reservations.
func (b *Buddy) ReservedBytes() uint64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.reservedB
}

// HeapSize returns the managed heap size.
func (b *Buddy) HeapSize() uint64 { return b.heapSize }

// ForEachAllocated calls fn for every allocated minimum block's address, in
// ascending order. Used by fsck's mark-and-sweep.
func (b *Buddy) ForEachAllocated(fn func(addr uint64) error) error {
	b.mu.Lock()
	defer b.mu.Unlock()
	nblocks := b.heapSize / MinBlock
	for blk := uint64(0); blk < nblocks; blk++ {
		set, err := b.bitAt(blk)
		if err != nil {
			return err
		}
		if set {
			if err := fn(b.heapStart + blk*MinBlock); err != nil {
				return err
			}
		}
	}
	return nil
}

// Reservation holds concrete blocks taken off the volatile free lists
// without any bitmap writes: persistent state still records them free, so a
// crash releases every open reservation for free (the free lists are rebuilt
// from the bitmap at attach). The TFS reserves a batch's worst-case demand
// before journaling it, then serves apply-time allocations from the
// reservation, guaranteeing a committed batch can never fail on space.
//
// A Reservation implements the same Alloc/Free contract as Buddy and is not
// safe for concurrent use with itself, matching the TFS's serialized apply.
type Reservation struct {
	b        *Buddy
	blocks   map[uint][]uint64 // order -> held block addresses
	held     uint64            // bytes currently held (not yet consumed)
	fallback uint64            // allocs that fell through to the shared pool
	consumed uint64            // bytes actually drawn (held-serve + fallbacks)
}

// Reserve takes one block per requested size off the free lists. It either
// reserves the whole demand or nothing: on failure everything is returned
// and ErrNoSpace (or ErrTooLarge) is reported.
func (b *Buddy) Reserve(sizes []uint64) (*Reservation, error) {
	if err := b.faults.Hit("alloc.reserve"); err != nil {
		return nil, err
	}
	r := &Reservation{b: b, blocks: make(map[uint][]uint64)}
	b.mu.Lock()
	defer b.mu.Unlock()
	for _, size := range sizes {
		order := OrderFor(size)
		var err error
		if order > b.maxOrder {
			err = fmt.Errorf("%w: %d bytes (order %d > max %d)", ErrTooLarge, size, order, b.maxOrder)
		} else {
			var addr uint64
			addr, err = b.popLocked(order)
			if err == nil {
				r.blocks[order] = append(r.blocks[order], addr)
				sz := BlockSize(order)
				b.freeB -= sz
				b.reservedB += sz
				r.held += sz
				continue
			}
		}
		b.releaseLocked(r)
		return nil, err
	}
	return r, nil
}

// releaseLocked returns every held block to the free lists.
func (b *Buddy) releaseLocked(r *Reservation) {
	for order, list := range r.blocks {
		for _, addr := range list {
			b.pushLocked(addr, order)
			sz := BlockSize(order)
			b.freeB += sz
			b.reservedB -= sz
		}
	}
	r.blocks = make(map[uint][]uint64)
	r.held = 0
}

// Alloc serves an allocation from the reservation: the block's bitmap bits
// are committed only now. If the reservation cannot cover the request (the
// worst-case estimate was wrong), it falls through to the shared pool; the
// Fallbacks counter records how often that happened.
func (r *Reservation) Alloc(size uint64) (uint64, error) {
	b := r.b
	order := OrderFor(size)
	if order > b.maxOrder {
		return 0, fmt.Errorf("%w: %d bytes (order %d > max %d)", ErrTooLarge, size, order, b.maxOrder)
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	o := order
	for o <= b.maxOrder && len(r.blocks[o]) == 0 {
		o++
	}
	if o > b.maxOrder {
		r.fallback++
		addr, err := b.allocLocked(order)
		if err == nil {
			r.consumed += BlockSize(order)
		}
		return addr, err
	}
	addr := r.blocks[o][len(r.blocks[o])-1]
	r.blocks[o] = r.blocks[o][:len(r.blocks[o])-1]
	for o > order {
		o--
		r.blocks[o] = append(r.blocks[o], addr+BlockSize(o))
	}
	blk := (addr - b.heapStart) / MinBlock
	n := BlockSize(order) / MinBlock
	if err := b.setBits(blk, n, true); err != nil {
		r.blocks[order] = append(r.blocks[order], addr)
		return 0, err
	}
	sz := BlockSize(order)
	b.reservedB -= sz
	r.held -= sz
	r.consumed += sz
	return addr, nil
}

// Free returns an extent to the shared pool (frees during apply — truncates,
// unlinks, table rehashes — are real frees, not reservation refills).
func (r *Reservation) Free(addr, size uint64) error { return r.b.Free(addr, size) }

// Release returns all unconsumed blocks to the free lists. Idempotent.
func (r *Reservation) Release() {
	b := r.b
	b.mu.Lock()
	defer b.mu.Unlock()
	b.releaseLocked(r)
}

// HeldBytes returns the bytes still held (reserved but not consumed).
func (r *Reservation) HeldBytes() uint64 {
	r.b.mu.Lock()
	defer r.b.mu.Unlock()
	return r.held
}

// Fallbacks returns how many allocations bypassed the reservation because it
// could not cover them.
func (r *Reservation) Fallbacks() uint64 {
	r.b.mu.Lock()
	defer r.b.mu.Unlock()
	return r.fallback
}

// ConsumedBytes returns the bytes actually drawn through this reservation —
// held blocks whose bitmap bits were committed plus fallback allocations.
// This is the batch's real space cost (the worst-case demand minus whatever
// Release returns), which the TFS charges against the batch's tenant.
func (r *Reservation) ConsumedBytes() uint64 {
	r.b.mu.Lock()
	defer r.b.mu.Unlock()
	return r.consumed
}

// FragStats is a snapshot of the allocator's free-space fragmentation: how
// the free bytes are scattered across buddy orders. LargestFree is the
// biggest single extent allocatable right now; Index is 1 −
// LargestFree/FreeBytes, so 0 means all free space is one contiguous block
// and values near 1 mean the free space has shattered into minimum-order
// fragments — the aging signal the long-haul harness tracks.
type FragStats struct {
	FreeBytes   uint64
	LargestFree uint64
	Fragments   uint64          // total free blocks across all orders
	PerOrder    map[uint]uint64 // order -> free block count
	Index       float64
}

// FragStats snapshots free-list fragmentation. Blocks held by open
// reservations are off the free lists and therefore excluded, matching
// FreeBytes.
func (b *Buddy) FragStats() FragStats {
	b.mu.Lock()
	defer b.mu.Unlock()
	st := FragStats{FreeBytes: b.freeB, PerOrder: make(map[uint]uint64)}
	for order, list := range b.free {
		if len(list) == 0 {
			continue
		}
		st.PerOrder[order] = uint64(len(list))
		st.Fragments += uint64(len(list))
		if sz := BlockSize(order); sz > st.LargestFree {
			st.LargestFree = sz
		}
	}
	if st.FreeBytes > 0 {
		st.Index = 1 - float64(st.LargestFree)/float64(st.FreeBytes)
	}
	return st
}
