// Package alloc implements the TFS's buddy storage allocator (§5.3.7): it
// carves power-of-two extents out of a partition's data area. The free-list
// structure is volatile (rebuilt at attach time), while the authoritative
// allocation state is a persistent bitmap in SCM with one bit per minimum
// block. The TFS updates the bitmap only while applying journaled operations,
// so a crash never leaks blocks that no committed operation references.
package alloc

import (
	"errors"
	"fmt"
	"math/bits"
	"sync"

	"github.com/aerie-fs/aerie/internal/scm"
)

// MinBlock is the smallest allocatable extent (one page, the protection
// granularity).
const MinBlock = scm.PageSize

const minOrder = 12 // log2(MinBlock)

// Errors.
var (
	ErrNoSpace  = errors.New("alloc: out of space")
	ErrBadFree  = errors.New("alloc: bad free")
	ErrTooLarge = errors.New("alloc: request exceeds heap")
)

// BitmapBytes returns the size of the persistent bitmap needed for a heap of
// heapSize bytes, rounded up to a cache line.
func BitmapBytes(heapSize uint64) uint64 {
	blocks := heapSize / MinBlock
	return (blocks/8 + scm.LineSize - 1) / scm.LineSize * scm.LineSize
}

// Buddy is a buddy allocator over [heapStart, heapStart+heapSize) with its
// allocation bitmap at bitmapAddr. Safe for concurrent use.
type Buddy struct {
	mem        scm.Space
	bitmapAddr uint64
	heapStart  uint64
	heapSize   uint64
	maxOrder   uint

	mu    sync.Mutex
	free  map[uint][]uint64 // order -> free block addresses (volatile)
	freeB uint64            // free bytes
}

// Format zeroes the bitmap (everything free) and returns an attached
// allocator.
func Format(mem scm.Space, bitmapAddr, heapStart, heapSize uint64) (*Buddy, error) {
	heapSize = heapSize / MinBlock * MinBlock
	if heapSize == 0 {
		return nil, fmt.Errorf("%w: empty heap", ErrNoSpace)
	}
	if err := scm.Zero(mem, bitmapAddr, int(BitmapBytes(heapSize))); err != nil {
		return nil, err
	}
	if err := mem.Flush(bitmapAddr, int(BitmapBytes(heapSize))); err != nil {
		return nil, err
	}
	return Attach(mem, bitmapAddr, heapStart, heapSize)
}

// Attach rebuilds the volatile free lists from the persistent bitmap, e.g.
// after a crash: maximal aligned free runs are decomposed greedily into
// buddy blocks.
func Attach(mem scm.Space, bitmapAddr, heapStart, heapSize uint64) (*Buddy, error) {
	heapSize = heapSize / MinBlock * MinBlock
	b := &Buddy{
		mem:        mem,
		bitmapAddr: bitmapAddr,
		heapStart:  heapStart,
		heapSize:   heapSize,
		free:       make(map[uint][]uint64),
	}
	b.maxOrder = uint(bits.Len64(heapSize)) - 1
	if 1<<b.maxOrder > heapSize {
		b.maxOrder--
	}
	// Scan the bitmap for free runs.
	nblocks := heapSize / MinBlock
	run := uint64(0)
	runStart := uint64(0)
	for blk := uint64(0); blk <= nblocks; blk++ {
		allocated := true
		if blk < nblocks {
			var err error
			allocated, err = b.bitAt(blk)
			if err != nil {
				return nil, err
			}
		}
		if !allocated {
			if run == 0 {
				runStart = blk
			}
			run++
			continue
		}
		if run > 0 {
			b.insertRun(runStart, run)
			run = 0
		}
	}
	return b, nil
}

// insertRun decomposes a free run of blocks into maximal aligned buddy
// blocks and pushes them on the free lists.
func (b *Buddy) insertRun(startBlk, nblocks uint64) {
	blk := startBlk
	remaining := nblocks
	for remaining > 0 {
		// Largest order that is aligned at blk and fits in remaining.
		order := uint(minOrder)
		for order < b.maxOrder {
			sizeBlocks := uint64(1) << (order + 1 - minOrder)
			if blk%sizeBlocks != 0 || sizeBlocks > remaining {
				break
			}
			order++
		}
		sizeBlocks := uint64(1) << (order - minOrder)
		addr := b.heapStart + blk*MinBlock
		b.free[order] = append(b.free[order], addr)
		b.freeB += sizeBlocks * MinBlock
		blk += sizeBlocks
		remaining -= sizeBlocks
	}
}

func (b *Buddy) bitAt(blk uint64) (bool, error) {
	var buf [1]byte
	if err := b.mem.Read(b.bitmapAddr+blk/8, buf[:]); err != nil {
		return false, err
	}
	return buf[0]&(1<<(blk%8)) != 0, nil
}

// setBits marks [blk, blk+n) allocated (v=true) or free (v=false) and
// flushes the touched bitmap bytes.
func (b *Buddy) setBits(blk, n uint64, v bool) error {
	firstByte := blk / 8
	lastByte := (blk + n - 1) / 8
	buf := make([]byte, lastByte-firstByte+1)
	if err := b.mem.Read(b.bitmapAddr+firstByte, buf); err != nil {
		return err
	}
	for i := blk; i < blk+n; i++ {
		idx := i/8 - firstByte
		if v {
			buf[idx] |= 1 << (i % 8)
		} else {
			buf[idx] &^= 1 << (i % 8)
		}
	}
	return scm.WriteFlush(b.mem, b.bitmapAddr+firstByte, buf)
}

// OrderFor returns the buddy order used for a request of size bytes.
func OrderFor(size uint64) uint {
	if size <= MinBlock {
		return minOrder
	}
	o := uint(bits.Len64(size - 1))
	return o
}

// BlockSize returns the byte size of a block of the given order.
func BlockSize(order uint) uint64 { return 1 << order }

// Alloc allocates an extent of at least size bytes, returning its address.
// The extent's actual size is BlockSize(OrderFor(size)).
func (b *Buddy) Alloc(size uint64) (uint64, error) {
	order := OrderFor(size)
	if order > b.maxOrder {
		return 0, fmt.Errorf("%w: %d bytes (order %d > max %d)", ErrTooLarge, size, order, b.maxOrder)
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	// Find the smallest order with a free block, splitting down.
	o := order
	for o <= b.maxOrder && len(b.free[o]) == 0 {
		o++
	}
	if o > b.maxOrder {
		return 0, fmt.Errorf("%w: no free block of order %d", ErrNoSpace, order)
	}
	addr := b.free[o][len(b.free[o])-1]
	b.free[o] = b.free[o][:len(b.free[o])-1]
	for o > order {
		o--
		buddy := addr + BlockSize(o)
		b.free[o] = append(b.free[o], buddy)
	}
	blk := (addr - b.heapStart) / MinBlock
	n := BlockSize(order) / MinBlock
	if err := b.setBits(blk, n, true); err != nil {
		// Roll the block back onto the free list.
		b.free[order] = append(b.free[order], addr)
		return 0, err
	}
	b.freeB -= BlockSize(order)
	return addr, nil
}

// Free returns an extent previously allocated with size bytes (the original
// request size; it is rounded to the same order). Buddies are coalesced.
func (b *Buddy) Free(addr, size uint64) error {
	order := OrderFor(size)
	if addr < b.heapStart || addr+BlockSize(order) > b.heapStart+b.heapSize {
		return fmt.Errorf("%w: [%#x,+%d) outside heap", ErrBadFree, addr, size)
	}
	if (addr-b.heapStart)%BlockSize(order) != 0 {
		return fmt.Errorf("%w: %#x misaligned for order %d", ErrBadFree, addr, order)
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	blk := (addr - b.heapStart) / MinBlock
	// Double-free detection: the first block must be marked allocated.
	set, err := b.bitAt(blk)
	if err != nil {
		return err
	}
	if !set {
		return fmt.Errorf("%w: %#x already free", ErrBadFree, addr)
	}
	if err := b.setBits(blk, BlockSize(order)/MinBlock, false); err != nil {
		return err
	}
	b.freeB += BlockSize(order)
	// Coalesce with free buddies.
	for order < b.maxOrder {
		buddy := b.heapStart + ((addr - b.heapStart) ^ BlockSize(order))
		if !b.removeFree(order, buddy) {
			break
		}
		if buddy < addr {
			addr = buddy
		}
		order++
	}
	b.free[order] = append(b.free[order], addr)
	return nil
}

func (b *Buddy) removeFree(order uint, addr uint64) bool {
	list := b.free[order]
	for i, a := range list {
		if a == addr {
			list[i] = list[len(list)-1]
			b.free[order] = list[:len(list)-1]
			return true
		}
	}
	return false
}

// FreeBytes returns the total free space.
func (b *Buddy) FreeBytes() uint64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.freeB
}

// HeapSize returns the managed heap size.
func (b *Buddy) HeapSize() uint64 { return b.heapSize }

// ForEachAllocated calls fn for every allocated minimum block's address, in
// ascending order. Used by fsck's mark-and-sweep.
func (b *Buddy) ForEachAllocated(fn func(addr uint64) error) error {
	b.mu.Lock()
	defer b.mu.Unlock()
	nblocks := b.heapSize / MinBlock
	for blk := uint64(0); blk < nblocks; blk++ {
		set, err := b.bitAt(blk)
		if err != nil {
			return err
		}
		if set {
			if err := fn(b.heapStart + blk*MinBlock); err != nil {
				return err
			}
		}
	}
	return nil
}
