package alloc

import (
	"math/rand"
	"sort"
	"sync"
	"testing"

	"github.com/aerie-fs/aerie/internal/scm"
)

// The property tests drive the buddy allocator with random alloc/free
// sequences punctuated by simulated power loss, checking it against a plain
// map model. The bitmap is the authoritative state (§5.3.7): after a crash,
// Attach must rebuild free lists that agree exactly with every extent the
// model says is live.

const (
	propHeapStart = 64 * 1024
	propHeapSize  = 1 << 20
)

// checkModel verifies the allocator agrees with the model: the exact set of
// allocated minimum blocks, the free-byte count, and that no two live
// extents overlap.
func checkModel(t *testing.T, b *Buddy, model map[uint64]uint64) {
	t.Helper()
	want := map[uint64]bool{}
	type ext struct{ addr, size uint64 }
	exts := make([]ext, 0, len(model))
	for addr, size := range model {
		exts = append(exts, ext{addr, size})
		for a := addr; a < addr+size; a += MinBlock {
			if want[a] {
				t.Fatalf("model overlap at %#x", a)
			}
			want[a] = true
		}
	}
	sort.Slice(exts, func(i, j int) bool { return exts[i].addr < exts[j].addr })
	for i := 1; i < len(exts); i++ {
		if exts[i-1].addr+exts[i-1].size > exts[i].addr {
			t.Fatalf("allocator handed out overlapping extents: [%#x,+%d) and [%#x,+%d)",
				exts[i-1].addr, exts[i-1].size, exts[i].addr, exts[i].size)
		}
	}
	got := map[uint64]bool{}
	if err := b.ForEachAllocated(func(addr uint64) error {
		got[addr] = true
		return nil
	}); err != nil {
		t.Fatalf("ForEachAllocated: %v", err)
	}
	for a := range want {
		if !got[a] {
			t.Fatalf("block %#x live in model but free in bitmap (leak-to-free)", a)
		}
	}
	for a := range got {
		if !want[a] {
			t.Fatalf("block %#x allocated in bitmap but unknown to model (leaked)", a)
		}
	}
	var used uint64
	for _, size := range model {
		used += size
	}
	if fb := b.FreeBytes(); fb != propHeapSize-used {
		t.Fatalf("FreeBytes = %d, want %d (heap %d - used %d)", fb, propHeapSize-used, uint64(propHeapSize), used)
	}
}

// TestPropertyAllocFreeCrashRecover is the model-based random walk: alloc,
// free, and crash-recover in random order, checking full agreement with the
// map model after every recovery and at the end of each seed.
func TestPropertyAllocFreeCrashRecover(t *testing.T) {
	for _, seed := range []int64{1, 2, 3, 5, 8, 13, 21, 34} {
		seed := seed
		t.Run("", func(t *testing.T) {
			rng := rand.New(rand.NewSource(seed))
			mem := scm.New(scm.Config{Size: 2 << 20, TrackPersistence: true})
			b, err := Format(mem, scm.PageSize, propHeapStart, propHeapSize)
			if err != nil {
				t.Fatal(err)
			}
			model := map[uint64]uint64{} // addr -> rounded extent size
			live := []uint64{}           // addrs, for random victim selection
			steps := 600
			if testing.Short() {
				steps = 150
			}
			for i := 0; i < steps; i++ {
				switch r := rng.Intn(100); {
				case r < 55: // alloc
					req := uint64(rng.Intn(64*1024) + 1)
					addr, err := b.Alloc(req)
					if err != nil {
						continue // exhaustion is legitimate
					}
					size := BlockSize(OrderFor(req))
					if _, dup := model[addr]; dup {
						t.Fatalf("step %d: Alloc returned live address %#x", i, addr)
					}
					model[addr] = size
					live = append(live, addr)
				case r < 85 && len(live) > 0: // free a random live extent
					vi := rng.Intn(len(live))
					addr := live[vi]
					if err := b.Free(addr, model[addr]); err != nil {
						t.Fatalf("step %d: Free(%#x, %d): %v", i, addr, model[addr], err)
					}
					delete(model, addr)
					live[vi] = live[len(live)-1]
					live = live[:len(live)-1]
				case r < 90 && len(live) > 0: // double free must be rejected
					addr := live[rng.Intn(len(live))]
					size := model[addr]
					if err := b.Free(addr, size); err != nil {
						t.Fatalf("step %d: Free(%#x): %v", i, addr, err)
					}
					if err := b.Free(addr, size); err == nil {
						t.Fatalf("step %d: double free of %#x accepted", i, addr)
					}
					delete(model, addr)
					for vi, a := range live {
						if a == addr {
							live[vi] = live[len(live)-1]
							live = live[:len(live)-1]
							break
						}
					}
				default: // crash and recover from the bitmap
					mem.Crash()
					b, err = Attach(mem, scm.PageSize, propHeapStart, propHeapSize)
					if err != nil {
						t.Fatalf("step %d: Attach after crash: %v", i, err)
					}
					checkModel(t, b, model)
				}
			}
			checkModel(t, b, model)
			// Drain: everything must free cleanly and the heap must come back whole.
			for addr, size := range model {
				if err := b.Free(addr, size); err != nil {
					t.Fatalf("drain Free(%#x, %d): %v", addr, size, err)
				}
			}
			if fb := b.FreeBytes(); fb != propHeapSize {
				t.Fatalf("after drain FreeBytes = %d, want %d", fb, uint64(propHeapSize))
			}
		})
	}
}

// TestPropertyConcurrentAllocFree hammers one allocator from several
// goroutines (meaningful under -race): every handed-out extent must be
// unique, and after joining, the survivors must match the bitmap exactly.
func TestPropertyConcurrentAllocFree(t *testing.T) {
	mem := scm.New(scm.Config{Size: 2 << 20, TrackPersistence: true})
	b, err := Format(mem, scm.PageSize, propHeapStart, propHeapSize)
	if err != nil {
		t.Fatal(err)
	}
	const workers = 8
	iters := 300
	if testing.Short() {
		iters = 60
	}
	var mu sync.Mutex
	survivors := map[uint64]uint64{}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w + 1)))
			mine := map[uint64]uint64{}
			for i := 0; i < iters; i++ {
				if rng.Intn(2) == 0 || len(mine) == 0 {
					req := uint64(rng.Intn(16*1024) + 1)
					addr, err := b.Alloc(req)
					if err != nil {
						continue
					}
					mine[addr] = BlockSize(OrderFor(req))
				} else {
					for addr, size := range mine {
						if err := b.Free(addr, size); err != nil {
							t.Errorf("worker %d: Free(%#x): %v", w, addr, err)
						}
						delete(mine, addr)
						break
					}
				}
			}
			mu.Lock()
			for addr, size := range mine {
				if prev, dup := survivors[addr]; dup {
					t.Errorf("address %#x handed to two workers (sizes %d, %d)", addr, prev, size)
				}
				survivors[addr] = size
			}
			mu.Unlock()
		}(w)
	}
	wg.Wait()
	if t.Failed() {
		return
	}
	checkModel(t, b, survivors)
}
