package alloc

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/aerie-fs/aerie/internal/scm"
)

// newBuddy creates a 1 MiB heap starting at 64 KiB with its bitmap at 4 KiB.
func newBuddy(t *testing.T) (*Buddy, *scm.Memory) {
	t.Helper()
	mem := scm.New(scm.Config{Size: 2 << 20, TrackPersistence: true})
	b, err := Format(mem, scm.PageSize, 64*1024, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	return b, mem
}

func TestAllocBasics(t *testing.T) {
	b, _ := newBuddy(t)
	if b.FreeBytes() != 1<<20 {
		t.Fatalf("free = %d", b.FreeBytes())
	}
	a1, err := b.Alloc(100) // rounds to 4 KiB
	if err != nil {
		t.Fatal(err)
	}
	if (a1-64*1024)%MinBlock != 0 {
		t.Fatalf("misaligned alloc %#x", a1)
	}
	if b.FreeBytes() != 1<<20-MinBlock {
		t.Fatalf("free after alloc = %d", b.FreeBytes())
	}
	a2, err := b.Alloc(5000) // rounds to 8 KiB
	if err != nil {
		t.Fatal(err)
	}
	if a2%(8*1024) != 0 && (a2-64*1024)%(8*1024) != 0 {
		t.Fatalf("order-13 block misaligned: %#x", a2)
	}
	if err := b.Free(a1, 100); err != nil {
		t.Fatal(err)
	}
	if err := b.Free(a2, 5000); err != nil {
		t.Fatal(err)
	}
	if b.FreeBytes() != 1<<20 {
		t.Fatalf("free after frees = %d", b.FreeBytes())
	}
}

func TestAllocFullHeapAndCoalesce(t *testing.T) {
	b, _ := newBuddy(t)
	// Allocate the entire heap as one block, free it, then allocate it
	// again: coalescing must restore the maximal block.
	a, err := b.Alloc(1 << 20)
	if err != nil {
		t.Fatal(err)
	}
	if err := b.Free(a, 1<<20); err != nil {
		t.Fatal(err)
	}
	var addrs []uint64
	for i := 0; i < 256; i++ {
		x, err := b.Alloc(MinBlock)
		if err != nil {
			t.Fatalf("alloc %d: %v", i, err)
		}
		addrs = append(addrs, x)
	}
	for _, x := range addrs {
		if err := b.Free(x, MinBlock); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := b.Alloc(1 << 20); err != nil {
		t.Fatalf("coalescing failed, cannot re-allocate whole heap: %v", err)
	}
}

func TestAllocExhaustion(t *testing.T) {
	b, _ := newBuddy(t)
	for {
		if _, err := b.Alloc(MinBlock); err != nil {
			if !errors.Is(err, ErrNoSpace) {
				t.Fatalf("wrong error: %v", err)
			}
			break
		}
	}
	if b.FreeBytes() != 0 {
		t.Fatalf("free at exhaustion = %d", b.FreeBytes())
	}
}

func TestAllocTooLarge(t *testing.T) {
	b, _ := newBuddy(t)
	if _, err := b.Alloc(2 << 20); !errors.Is(err, ErrTooLarge) {
		t.Fatalf("want ErrTooLarge, got %v", err)
	}
}

func TestDoubleAndBadFree(t *testing.T) {
	b, _ := newBuddy(t)
	a, _ := b.Alloc(MinBlock)
	if err := b.Free(a, MinBlock); err != nil {
		t.Fatal(err)
	}
	if err := b.Free(a, MinBlock); !errors.Is(err, ErrBadFree) {
		t.Fatalf("double free: %v", err)
	}
	if err := b.Free(1, MinBlock); !errors.Is(err, ErrBadFree) {
		t.Fatalf("free outside heap: %v", err)
	}
	a2, _ := b.Alloc(8 * 1024)
	if err := b.Free(a2+MinBlock, 8*1024); !errors.Is(err, ErrBadFree) {
		t.Fatalf("misaligned free: %v", err)
	}
	if err := b.Free(a2, 8*1024); err != nil {
		t.Fatal(err)
	}
}

func TestAttachRebuildsFromBitmap(t *testing.T) {
	b, mem := newBuddy(t)
	var kept []uint64
	for i := 0; i < 10; i++ {
		a, err := b.Alloc(MinBlock * uint64(1+i%3))
		if err != nil {
			t.Fatal(err)
		}
		kept = append(kept, a)
	}
	freeBefore := b.FreeBytes()
	mem.Crash()
	b2, err := Attach(mem, scm.PageSize, 64*1024, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	if b2.FreeBytes() != freeBefore {
		t.Fatalf("free after recovery = %d, want %d", b2.FreeBytes(), freeBefore)
	}
	// Fresh allocations must not overlap surviving ones.
	seen := map[uint64]bool{}
	for _, a := range kept {
		seen[a] = true
	}
	for {
		a, err := b2.Alloc(MinBlock)
		if err != nil {
			break
		}
		if seen[a] {
			t.Fatalf("recovered allocator handed out live block %#x", a)
		}
	}
	// Frees of pre-crash allocations still work.
	if err := b2.Free(kept[0], MinBlock); err != nil {
		t.Fatalf("free pre-crash block: %v", err)
	}
}

func TestOrderFor(t *testing.T) {
	cases := []struct {
		size uint64
		want uint
	}{
		{1, 12}, {4096, 12}, {4097, 13}, {8192, 13}, {1 << 20, 20},
	}
	for _, c := range cases {
		if got := OrderFor(c.size); got != c.want {
			t.Errorf("OrderFor(%d) = %d, want %d", c.size, got, c.want)
		}
	}
}

// Property: arbitrary alloc/free sequences never produce overlapping live
// extents, never misalign, and free bytes stay consistent.
func TestQuickNoOverlapNoLeak(t *testing.T) {
	type live struct{ addr, size uint64 }
	f := func(seed int64, steps []uint16) bool {
		mem := scm.New(scm.Config{Size: 2 << 20})
		b, err := Format(mem, scm.PageSize, 64*1024, 1<<20)
		if err != nil {
			return false
		}
		rng := rand.New(rand.NewSource(seed))
		var lives []live
		for _, s := range steps {
			if s%2 == 0 || len(lives) == 0 {
				size := uint64(1+rng.Intn(4*MinBlock)) + uint64(s%7)*MinBlock
				a, err := b.Alloc(size)
				if errors.Is(err, ErrNoSpace) || errors.Is(err, ErrTooLarge) {
					continue
				}
				if err != nil {
					return false
				}
				actual := BlockSize(OrderFor(size))
				for _, l := range lives {
					la := BlockSize(OrderFor(l.size))
					if a < l.addr+la && l.addr < a+actual {
						return false // overlap
					}
				}
				lives = append(lives, live{a, size})
			} else {
				i := int(s) % len(lives)
				if err := b.Free(lives[i].addr, lives[i].size); err != nil {
					return false
				}
				lives[i] = lives[len(lives)-1]
				lives = lives[:len(lives)-1]
			}
		}
		// Free everything: heap must return to fully free.
		for _, l := range lives {
			if err := b.Free(l.addr, l.size); err != nil {
				return false
			}
		}
		return b.FreeBytes() == 1<<20
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkAllocFree4K(b *testing.B) {
	mem := scm.New(scm.Config{Size: 8 << 20})
	bd, err := Format(mem, scm.PageSize, 64*1024, 4<<20)
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		a, err := bd.Alloc(MinBlock)
		if err != nil {
			b.Fatal(err)
		}
		if err := bd.Free(a, MinBlock); err != nil {
			b.Fatal(err)
		}
	}
}
