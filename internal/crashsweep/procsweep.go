package crashsweep

// Process-level crash sweep: the in-process sweeps in this package simulate
// death (panic-unwind plus a discarded volatile image); this file provides
// the harness for the real thing. A child process — the test binary
// re-executed — builds a machine on an mmap-backed volume file, runs a
// pipelined multi-client workload with a SIGKILL armed at a chosen fault
// point ordinal, and dies mid-write-burst with no unwinding at all. The
// parent then reopens the same file with core.Open and asserts the machine
// recovers: dirty flag seen, Fsck(repair) clean, zero leaks, and each
// client's published window surviving as a strict prefix with intact
// contents.

import (
	"fmt"
	"time"

	"github.com/aerie-fs/aerie/internal/core"
	"github.com/aerie-fs/aerie/internal/faultinject"
	"github.com/aerie-fs/aerie/internal/libfs"
	"github.com/aerie-fs/aerie/internal/pxfs"
)

// ProcConfig parameterizes one child run of the process sweep.
type ProcConfig struct {
	// VolumePath is the volume file shared between child and parent.
	VolumePath string
	// Point and Ordinal arm the SIGKILL: the Ordinal'th hit of Point kills
	// the process. Empty Point runs the workload fault-free (the baseline
	// enumeration run).
	Point   string
	Ordinal uint64
	// Clients is the number of concurrent writer sessions (default 2).
	Clients int
	// Steps is the number of files each client publishes (default 12).
	Steps int
}

func (c *ProcConfig) defaults() {
	if c.Clients == 0 {
		c.Clients = 2
	}
	if c.Steps == 0 {
		c.Steps = 12
	}
}

// procContent is the deterministic 1 KiB payload of client k's step i file;
// the parent recomputes it to check surviving files byte-for-byte.
func procContent(client, step int) []byte {
	b := make([]byte, 1024)
	for j := range b {
		b[j] = byte((client*131 + step*7 + j) % 251)
	}
	return b
}

func procDir(client int) string  { return fmt.Sprintf("/c%d", client) }
func procName(client, step int) string {
	return fmt.Sprintf("/c%d/p%02d", client, step)
}

// buildProc assembles a volume-backed machine for the sweep. Degradation is
// a harness failure here: the whole point is the persistent arena.
func buildProc(path string, inj *faultinject.Injector) (*core.System, error) {
	sys, err := core.New(core.Options{
		ArenaSize:      16 << 20,
		VolumePath:     path,
		Lease:          time.Hour,
		AcquireTimeout: 10 * time.Second,
		Faults:         inj,
	})
	if err != nil {
		return nil, err
	}
	if err := sys.Degraded(); err != nil {
		sys.Close()
		return nil, fmt.Errorf("volume degraded to volatile: %w", err)
	}
	return sys, nil
}

// procClient runs one writer: a pipelined session (Window 4, one-op
// batches) that makes its own directory and publishes Steps deterministic
// 1 KiB files into it. Each create+write+close is its own sequence of
// window batches, so the surviving names after a kill identify exactly
// which prefix of the client's window applied.
func procClient(sys *core.System, k, steps int) error {
	sess, err := sys.NewSession(libfs.Config{
		UID:        uint32(1000 + k),
		BatchLimit: 1,
		Window:     4,
		RenewEvery: time.Hour,
	})
	if err != nil {
		return err
	}
	fs := pxfs.New(sess, pxfs.Options{})
	if err := fs.Mkdir(procDir(k), 0o755); err != nil {
		return fmt.Errorf("client %d mkdir: %w", k, err)
	}
	for i := 0; i < steps; i++ {
		f, err := fs.Create(procName(k, i), 0o644)
		if err != nil {
			return fmt.Errorf("client %d create %d: %w", k, i, err)
		}
		if _, err := f.Write(procContent(k, i)); err != nil {
			return fmt.Errorf("client %d write %d: %w", k, i, err)
		}
		if err := f.Close(); err != nil {
			return fmt.Errorf("client %d close %d: %w", k, i, err)
		}
	}
	return fs.Sync()
}

// RunProcChild is the child-process body: build the machine on the volume
// file, arm the kill, run the concurrent clients to completion. When the
// armed ordinal fires the process is SIGKILLed somewhere in here and this
// function never returns; when it drifts out of reach the workload finishes,
// the machine closes cleanly, and the caller exits 0 so the parent knows to
// skip the ordinal. The returned counts are the per-point hits of a
// fault-free run (the baseline the parent samples ordinals from).
func RunProcChild(cfg ProcConfig) (map[string]uint64, error) {
	cfg.defaults()
	inj := faultinject.New()
	inj.Disable()
	sys, err := buildProc(cfg.VolumePath, inj)
	if err != nil {
		return nil, err
	}
	if cfg.Point != "" {
		inj.KillAt(cfg.Point, cfg.Ordinal)
	}
	inj.Enable()
	errs := make(chan error, cfg.Clients)
	for k := 0; k < cfg.Clients; k++ {
		go func(k int) { errs <- procClient(sys, k, cfg.Steps) }(k)
	}
	for k := 0; k < cfg.Clients; k++ {
		if err := <-errs; err != nil {
			return nil, err
		}
	}
	inj.Disable()
	counts := inj.Counts()
	if err := sys.Close(); err != nil {
		return nil, fmt.Errorf("clean close: %w", err)
	}
	return counts, nil
}

// VerifyProcVolume is the parent-side check after the child was killed:
// reopen the volume, require the dirty flag (the child never closed),
// require a clean repair and a live probe (verify), and require every
// client's published files to form a strict prefix of its step sequence
// with intact contents. The highest surviving file of a client may be
// incomplete — its content stores could still have been in flight when the
// insert published — but any file below the frontier must match
// byte-for-byte. Returns the consistency failures (nil means the volume
// recovered perfectly) and the recovered system's open error, if any.
func VerifyProcVolume(path string, clients, steps int) ([]string, error) {
	sys, err := core.Open(path, core.Options{
		Lease:          time.Hour,
		AcquireTimeout: 10 * time.Second,
	})
	if err != nil {
		return nil, err
	}
	defer sys.Close()
	var fails []string
	if !sys.Vol.WasDirty() {
		fails = append(fails, "killed child left a clean dirty flag")
	}
	fails = append(fails, verify(sys)...)
	sess, err := sys.NewSession(libfs.Config{UID: 2000, RenewEvery: time.Hour})
	if err != nil {
		return append(fails, fmt.Sprintf("verify mount: %v", err)), nil
	}
	defer sess.Close()
	fs := pxfs.New(sess, pxfs.Options{})
	for k := 0; k < clients; k++ {
		if _, err := fs.Stat(procDir(k)); err != nil {
			// The kill can land before this client's mkdir published;
			// nothing of the client survived, which is a valid prefix.
			continue
		}
		visible := make([]bool, steps)
		highest := -1
		for i := 0; i < steps; i++ {
			_, err := fs.Stat(procName(k, i))
			switch {
			case err == nil:
				visible[i] = true
				highest = i
			case isNotExist(err):
			default:
				fails = append(fails, fmt.Sprintf("client %d stat p%02d: %v", k, i, err))
			}
		}
		hole := -1
		for i := 0; i < steps; i++ {
			if !visible[i] {
				if hole < 0 {
					hole = i
				}
			} else if hole >= 0 {
				fails = append(fails, fmt.Sprintf(
					"client %d not prefix-consistent: p%02d survived but p%02d lost", k, i, hole))
			}
		}
		for i := 0; i < steps; i++ {
			if !visible[i] {
				continue
			}
			// The name publishes at create time, before the content ships,
			// so only the frontier file may legitimately be short: every
			// earlier file's writes were sequenced before a later publish.
			if msg := checkProcContent(fs, k, i, i != highest); msg != "" {
				fails = append(fails, msg)
			}
		}
	}
	return fails, nil
}

// checkProcContent reads client k's step i file and compares it to the
// deterministic payload. With strict set a mismatch of any kind fails; a
// frontier file (the last survivor) may be short or empty but what is there
// must still match the payload's prefix.
func checkProcContent(fs *pxfs.FS, k, i int, strict bool) string {
	want := procContent(k, i)
	f, err := fs.Open(procName(k, i), pxfs.O_RDONLY)
	if err != nil {
		return fmt.Sprintf("client %d open p%02d: %v", k, i, err)
	}
	defer f.Close()
	got := make([]byte, len(want))
	n, err := f.ReadAt(got, 0)
	if err != nil && n == 0 && !strict {
		return ""
	}
	if strict && n != len(want) {
		return fmt.Sprintf("client %d p%02d: %d of %d bytes survived", k, i, n, len(want))
	}
	for j := 0; j < n; j++ {
		if got[j] != want[j] {
			return fmt.Sprintf("client %d p%02d: byte %d is %#x, want %#x", k, i, j, got[j], want[j])
		}
	}
	return ""
}
