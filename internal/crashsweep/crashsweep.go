// Package crashsweep is the exhaustive crash-recovery harness: it runs a
// deterministic mutation workload against a full Aerie machine, enumerates
// every fault point the workload (and a subsequent recovery) exercises, and
// then re-runs the workload once per sampled ordinal of every point with a
// crash armed exactly there. After each simulated crash it drives the
// appropriate death-and-recovery sequence and asserts the volume came back
// consistent: Fsck(repair) reports no errors, a second Fsck finds zero
// leaked blocks, and a fresh client can still mutate the volume.
//
// Two crash models cover the fault points:
//
//   - Client death (libfs.* and rpc.* points, which fire on the client side
//     of the in-process transport): the session vanishes mid-operation, its
//     leases are force-expired — firing the TFS drop-client hook that
//     discards unshipped state and scavenges the pre-allocation pool — and
//     the TFS keeps running. This substitutes for a real process dying and
//     losing its memory mappings.
//
//   - Machine power loss (scm.*, journal.*, tfs.* points): the volatile
//     image is discarded, leases die with the lock service, and the TFS
//     recovers by journal replay plus pre-allocation scavenging.
//
// Ordinals past the workload phase fall inside recovery itself: for those
// the harness lets the workload finish, crashes the machine, arms the crash
// inside the first recovery, and then recovers a second time — checking
// that recovery is restartable (replay is idempotent, see the journal
// package's property test).
package crashsweep

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"time"

	"github.com/aerie-fs/aerie/internal/core"
	"github.com/aerie-fs/aerie/internal/faultinject"
	"github.com/aerie-fs/aerie/internal/libfs"
	"github.com/aerie-fs/aerie/internal/pxfs"
)

// Config tunes a sweep.
type Config struct {
	// Seed drives the deterministic workload (default 1).
	Seed int64
	// Steps is the number of workload mutation steps (default 24).
	Steps int
	// MaxOrdinalsPerPoint caps how many ordinals of each point are crashed
	// into (default 2: the first and the last hit). <=0 sweeps every
	// ordinal — exhaustive but slow.
	MaxOrdinalsPerPoint int
	// Points, when non-empty, restricts the sweep to these points.
	Points []string
	// Logf receives progress lines; nil discards them.
	Logf func(format string, args ...any)
}

func (c *Config) defaults() {
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.Steps == 0 {
		c.Steps = 24
	}
	if c.MaxOrdinalsPerPoint == 0 {
		c.MaxOrdinalsPerPoint = 2
	}
	if c.Logf == nil {
		c.Logf = func(string, ...any) {}
	}
}

// PointResult is the sweep outcome for one fault point.
type PointResult struct {
	Point string
	// WorkloadHits and RecoveryHits partition the baseline hit count: the
	// first WorkloadHits ordinals fire during the mutation workload, the
	// rest during the baseline crash-and-recover.
	WorkloadHits uint64
	RecoveryHits uint64
	// Sampled ordinals a crash was armed at.
	Sampled []uint64
	// Crashes that actually fired (the rest were misses: the armed ordinal
	// was never reached, e.g. timing-free drift between runs).
	Crashes int
	// Failures describes every consistency violation found.
	Failures []string
}

// Result is the outcome of a whole sweep.
type Result struct {
	Points []PointResult
	Runs   int
}

// Crashes totals the crash runs that actually fired.
func (r Result) Crashes() int {
	n := 0
	for _, p := range r.Points {
		n += p.Crashes
	}
	return n
}

// Failures flattens every per-point failure, prefixed with its point.
func (r Result) Failures() []string {
	var out []string
	for _, p := range r.Points {
		for _, f := range p.Failures {
			out = append(out, p.Point+": "+f)
		}
	}
	return out
}

func (r Result) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "crashsweep: %d points, %d runs, %d crashes, %d failures\n",
		len(r.Points), r.Runs, r.Crashes(), len(r.Failures()))
	for _, p := range r.Points {
		fmt.Fprintf(&b, "  %-28s hits=%d+%d sampled=%d crashes=%d failures=%d\n",
			p.Point, p.WorkloadHits, p.RecoveryHits, len(p.Sampled), p.Crashes, len(p.Failures))
	}
	return b.String()
}

// clientDeathPoint reports whether a point fires on the client side of the
// in-process transport, so a crash there models client death (TFS intact)
// rather than machine power loss.
func clientDeathPoint(point string) bool {
	return strings.HasPrefix(point, "libfs.") || strings.HasPrefix(point, "rpc.")
}

// build assembles a machine with the injector wired through every layer.
// The injector must be disabled around construction so that format-time
// hits don't shift workload ordinals.
func build(inj *faultinject.Injector) (*core.System, error) {
	return core.New(core.Options{
		ArenaSize:        32 << 20,
		TrackPersistence: true,
		// Leases must not lapse mid-workload on their own; expiry is always
		// explicit (ExpireClient or the crash's lock-service shutdown).
		Lease:          time.Hour,
		AcquireTimeout: 10 * time.Second,
		Faults:         inj,
	})
}

// mount opens the workload session. Renewal is off (huge interval) so the
// only goroutine touching fault points is the workload itself, keeping
// ordinal schedules deterministic.
func mount(sys *core.System) (*libfs.Session, *pxfs.FS, error) {
	sess, err := sys.NewSession(libfs.Config{
		UID:        1000,
		BatchLimit: 32 << 10,
		RenewEvery: time.Hour,
	})
	if err != nil {
		return nil, nil, err
	}
	return sess, pxfs.New(sess, pxfs.Options{NameCache: true}), nil
}

// workload runs the deterministic mutation mix: creates, overwrites,
// unlinks, renames, chmods (with and without hardware protection), and
// periodic syncs so every journal/apply/prealloc path is exercised.
func workload(fs *pxfs.FS, seed int64, steps int) error {
	rng := rand.New(rand.NewSource(seed))
	if err := fs.Mkdir("/d", 0o755); err != nil {
		return fmt.Errorf("mkdir: %w", err)
	}
	for step := 0; step < steps; step++ {
		name := fmt.Sprintf("/d/f%02d", rng.Intn(8))
		switch rng.Intn(6) {
		case 0, 1: // create or overwrite
			data := make([]byte, rng.Intn(8<<10)+1)
			rng.Read(data)
			f, err := fs.Create(name, 0o644)
			if err != nil {
				return fmt.Errorf("step %d create %s: %w", step, name, err)
			}
			if _, err := f.Write(data); err != nil {
				return fmt.Errorf("step %d write %s: %w", step, name, err)
			}
			if err := f.Close(); err != nil {
				return fmt.Errorf("step %d close %s: %w", step, name, err)
			}
		case 2: // unlink
			if err := fs.Unlink(name); err != nil && !isNotExist(err) {
				return fmt.Errorf("step %d unlink %s: %w", step, name, err)
			}
		case 3: // rename
			dst := fmt.Sprintf("/d/f%02d", rng.Intn(8))
			if dst != name {
				if err := fs.Rename(name, dst); err != nil && !isNotExist(err) {
					return fmt.Errorf("step %d rename %s: %w", step, name, err)
				}
			}
		case 4: // chmod, alternating hardware protection
			err := fs.Chmod(name, 0o600, step%2 == 0)
			if err != nil && !isNotExist(err) {
				return fmt.Errorf("step %d chmod %s: %w", step, name, err)
			}
		case 5: // sync mid-stream
			if err := fs.Sync(); err != nil {
				return fmt.Errorf("step %d sync: %w", step, err)
			}
		}
		if step%6 == 5 {
			if err := fs.Sync(); err != nil {
				return fmt.Errorf("step %d periodic sync: %w", step, err)
			}
		}
	}
	if err := fs.Sync(); err != nil {
		return fmt.Errorf("final sync: %w", err)
	}
	return nil
}

func isNotExist(err error) bool {
	return errors.Is(err, pxfs.ErrNotExist)
}

// verify asserts the recovered volume is consistent and alive: Fsck with
// repair succeeds and repairs everything it found, a second pass confirms
// zero leaked blocks remain, and a fresh session can create, sync, and read
// back a file.
func verify(sys *core.System) []string {
	var fails []string
	rep, err := sys.TFS.Fsck(true)
	if err != nil {
		return append(fails, fmt.Sprintf("fsck(repair): %v", err))
	}
	if rep.LeakedBlocks != rep.RepairedBlocks {
		fails = append(fails, fmt.Sprintf("fsck left unrepaired leaks: %v", rep))
	}
	rep2, err := sys.TFS.Fsck(false)
	if err != nil {
		return append(fails, fmt.Sprintf("fsck(recheck): %v", err))
	}
	if rep2.LeakedBlocks != 0 {
		fails = append(fails, fmt.Sprintf("leaks persist after repair: %v", rep2))
	}
	sess, err := sys.NewSession(libfs.Config{UID: 1001, RenewEvery: time.Hour})
	if err != nil {
		return append(fails, fmt.Sprintf("probe mount: %v", err))
	}
	defer sess.Close()
	fs := pxfs.New(sess, pxfs.Options{})
	f, err := fs.Create("/probe", 0o644)
	if err != nil {
		return append(fails, fmt.Sprintf("probe create: %v", err))
	}
	if _, err := f.Write([]byte("alive")); err != nil {
		return append(fails, fmt.Sprintf("probe write: %v", err))
	}
	_ = f.Close()
	if err := fs.Sync(); err != nil {
		return append(fails, fmt.Sprintf("probe sync: %v", err))
	}
	g, err := fs.Open("/probe", pxfs.O_RDONLY)
	if err != nil {
		return append(fails, fmt.Sprintf("probe reopen: %v", err))
	}
	buf := make([]byte, 5)
	if _, err := g.ReadAt(buf, 0); err != nil {
		fails = append(fails, fmt.Sprintf("probe read: %v", err))
	} else if string(buf) != "alive" {
		fails = append(fails, fmt.Sprintf("probe read back %q, want %q", buf, "alive"))
	}
	_ = g.Close()
	return fails
}

// sampleOrdinals picks up to max ordinals in [1, n], always including the
// first and last hit, evenly spaced between.
func sampleOrdinals(n uint64, max int) []uint64 {
	if n == 0 {
		return nil
	}
	if max <= 0 || uint64(max) >= n {
		out := make([]uint64, 0, n)
		for o := uint64(1); o <= n; o++ {
			out = append(out, o)
		}
		return out
	}
	out := make([]uint64, 0, max)
	for i := 0; i < max; i++ {
		o := 1 + (n-1)*uint64(i)/uint64(max-1)
		if len(out) == 0 || out[len(out)-1] != o {
			out = append(out, o)
		}
	}
	return out
}

// dirtyTrigger is the crash rule used to leave a non-empty journal behind:
// the first batch is committed and applied, but the crash lands before its
// checkpoint, so the subsequent recovery has records to replay. That makes
// the recovery-phase fault points (tfs.recover, journal.replay.record, ...)
// reachable for crash-during-recovery experiments.
const dirtyTrigger = "tfs.apply.checkpoint"

// Sweep runs the full enumeration. It returns an error only for harness
// breakage (e.g. the fault-free baseline failing); consistency violations
// are reported in the Result so the caller sees all of them at once.
func Sweep(cfg Config) (Result, error) {
	cfg.defaults()
	var res Result

	// Pass 1: fault-free baseline enumerates the workload-phase ordinals of
	// every point and proves the harness itself is sound.
	inj := faultinject.New()
	inj.Disable()
	sys, err := build(inj)
	if err != nil {
		return res, fmt.Errorf("baseline build: %w", err)
	}
	_, fs, err := mount(sys)
	if err != nil {
		return res, fmt.Errorf("baseline mount: %w", err)
	}
	inj.Enable()
	if err := workload(fs, cfg.Seed, cfg.Steps); err != nil {
		return res, fmt.Errorf("baseline workload: %w", err)
	}
	inj.Disable()
	workloadCounts := inj.Counts()
	if err := sys.CrashAndRecover(); err != nil {
		return res, fmt.Errorf("baseline recovery: %w", err)
	}
	if fails := verify(sys); len(fails) > 0 {
		return res, fmt.Errorf("baseline verify: %s", strings.Join(fails, "; "))
	}

	// Pass 2: dirty-recovery baseline. Crash the machine mid-apply (journal
	// non-empty), then run the recovery with counting enabled: the counts
	// that appear only after the crash are the recovery-phase windows.
	dinj := faultinject.New()
	dinj.Disable()
	dsys, err := build(dinj)
	if err != nil {
		return res, fmt.Errorf("dirty baseline build: %w", err)
	}
	_, dfs, err := mount(dsys)
	if err != nil {
		return res, fmt.Errorf("dirty baseline mount: %w", err)
	}
	dinj.CrashAt(dirtyTrigger, 1)
	dinj.Enable()
	crash, _ := faultinject.Run(func() error { return workload(dfs, cfg.Seed, cfg.Steps) })
	if crash == nil {
		return res, fmt.Errorf("dirty baseline: trigger crash at %s never fired", dirtyTrigger)
	}
	preRecovery := dinj.Counts()
	rcrash, rerr := faultinject.Run(func() error { return dsys.CrashAndRecover() })
	dinj.Disable()
	if rcrash != nil {
		return res, fmt.Errorf("dirty baseline: unexpected crash during recovery at %s", rcrash.Point)
	}
	if rerr != nil {
		return res, fmt.Errorf("dirty baseline recovery: %w", rerr)
	}
	dirtyTotal := dinj.Counts()
	if fails := verify(dsys); len(fails) > 0 {
		return res, fmt.Errorf("dirty baseline verify: %s", strings.Join(fails, "; "))
	}

	// recWindow[point] = (ordinal base, hits) inside the dirty recovery.
	type window struct{ base, hits uint64 }
	recWindow := map[string]window{}
	for p, tot := range dirtyTotal {
		if d := tot - preRecovery[p]; d > 0 {
			recWindow[p] = window{base: preRecovery[p], hits: d}
		}
	}

	pointSet := map[string]bool{}
	for p := range workloadCounts {
		pointSet[p] = true
	}
	for p := range recWindow {
		pointSet[p] = true
	}
	points := make([]string, 0, len(pointSet))
	for p := range pointSet {
		points = append(points, p)
	}
	sort.Strings(points)
	if len(cfg.Points) > 0 {
		keep := make(map[string]bool, len(cfg.Points))
		for _, p := range cfg.Points {
			keep[p] = true
		}
		filtered := points[:0]
		for _, p := range points {
			if keep[p] {
				filtered = append(filtered, p)
			}
		}
		points = filtered
	}
	cfg.Logf("crashsweep: baselines found %d fault points", len(points))

	// Pass 3: one run per sampled ordinal of every point — workload-phase
	// ordinals crash mid-workload, recovery-phase ordinals crash inside the
	// first recovery of the dirty scenario and then recover again.
	for _, point := range points {
		w := recWindow[point]
		pr := PointResult{
			Point:        point,
			WorkloadHits: workloadCounts[point],
			RecoveryHits: w.hits,
		}
		for _, ord := range sampleOrdinals(workloadCounts[point], cfg.MaxOrdinalsPerPoint) {
			pr.Sampled = append(pr.Sampled, ord)
			crashed, fails := runOne(cfg, point, ord)
			res.Runs++
			if crashed {
				pr.Crashes++
			}
			pr.Failures = append(pr.Failures, fails...)
			cfg.Logf("crashsweep: %s@%d crashed=%v failures=%d", point, ord, crashed, len(fails))
		}
		for _, rel := range sampleOrdinals(w.hits, cfg.MaxOrdinalsPerPoint) {
			ord := w.base + rel
			pr.Sampled = append(pr.Sampled, ord)
			crashed, fails := runDirty(cfg, point, ord)
			res.Runs++
			if crashed {
				pr.Crashes++
			}
			pr.Failures = append(pr.Failures, fails...)
			cfg.Logf("crashsweep: %s@%d (recovery) crashed=%v failures=%d", point, ord, crashed, len(fails))
		}
		res.Points = append(res.Points, pr)
	}
	return res, nil
}

// runOne performs a single crash experiment: workload with a crash armed at
// the ord'th hit of point, then the death-and-recovery sequence for that
// point's crash model, then verification. Returns whether the crash fired
// and any consistency failures.
func runOne(cfg Config, point string, ord uint64) (bool, []string) {
	inj := faultinject.New()
	inj.Disable()
	sys, err := build(inj)
	if err != nil {
		return false, []string{fmt.Sprintf("build: %v", err)}
	}
	sess, fs, err := mount(sys)
	if err != nil {
		return false, []string{fmt.Sprintf("mount: %v", err)}
	}
	clientID := sess.ClientID()
	inj.CrashAt(point, ord)
	inj.Enable()
	crash, werr := faultinject.Run(func() error {
		return workload(fs, cfg.Seed, cfg.Steps)
	})
	inj.Disable()

	switch {
	case crash != nil:
		if clientDeathPoint(point) {
			// The session is gone; its leases lapse and the TFS reclaims
			// the client's state. The machine itself stays up.
			sys.TFS.Locks.ExpireClient(clientID)
		} else {
			if err := sys.CrashAndRecover(); err != nil {
				return true, []string{fmt.Sprintf("recovery after crash@%d: %v", ord, err)}
			}
		}
		return true, tagged(verify(sys), point, ord, "post-crash")

	case werr != nil:
		return false, []string{fmt.Sprintf("workload error without crash @%d: %v", ord, werr)}

	default:
		// The armed ordinal was never reached (drift); nothing to assert
		// beyond the fault-free baseline already covered.
		return false, nil
	}
}

// runDirty performs a crash-during-recovery experiment: the dirty trigger
// crashes the machine with a non-empty journal, the first recovery runs
// with a crash armed at the ord'th hit of point, and a second recovery must
// then bring the volume back — recovery has to be restartable.
func runDirty(cfg Config, point string, ord uint64) (bool, []string) {
	inj := faultinject.New()
	inj.Disable()
	sys, err := build(inj)
	if err != nil {
		return false, []string{fmt.Sprintf("build: %v", err)}
	}
	_, fs, err := mount(sys)
	if err != nil {
		return false, []string{fmt.Sprintf("mount: %v", err)}
	}
	inj.CrashAt(dirtyTrigger, 1)
	inj.CrashAt(point, ord)
	inj.Enable()
	crash, _ := faultinject.Run(func() error { return workload(fs, cfg.Seed, cfg.Steps) })
	if crash == nil {
		inj.Disable()
		return false, []string{fmt.Sprintf("dirty trigger never fired for %s@%d", point, ord)}
	}
	crash2, rerr := faultinject.Run(func() error { return sys.CrashAndRecover() })
	inj.Disable()
	if crash2 == nil {
		if rerr != nil {
			return false, []string{fmt.Sprintf("first recovery error without crash @%d: %v", ord, rerr)}
		}
		// The recovery-phase ordinal drifted out of reach.
		return false, nil
	}
	if err := sys.CrashAndRecover(); err != nil {
		return true, []string{fmt.Sprintf("second recovery after crash-in-recovery@%d: %v", ord, err)}
	}
	return true, tagged(verify(sys), point, ord, "post-recovery-crash")
}

func tagged(fails []string, point string, ord uint64, phase string) []string {
	out := make([]string, 0, len(fails))
	for _, f := range fails {
		out = append(out, fmt.Sprintf("%s@%d [%s]: %s", point, ord, phase, f))
	}
	return out
}
