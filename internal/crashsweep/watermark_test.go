package crashsweep

import (
	"fmt"
	"testing"

	"github.com/aerie-fs/aerie/internal/faultinject"
)

// TestReplayAllocationWatermark pins the reservation design's recovery
// claim: journal replay never allocates space a previous replay of the same
// batch already consumed. Reservations are volatile (a crash returns every
// reserved block to the free lists), so the first replay re-allocates the
// batch's demand from scratch; any replay after that must be an
// allocation-level no-op thanks to the idempotent-redo probes.
//
// Both runs crash at tfs.apply.postcommit@ord, leaving a committed but
// unapplied batch in the journal. The control run recovers once. The probe
// run crashes a second time at tfs.recover.postreplay — after the first
// recovery fully replayed the batch but before the checkpoint erased it —
// so its second recovery replays the identical batch onto already-applied
// state. If that second replay double-allocated (e.g. a redo insert
// growing a table that the first replay already grew), the probe run would
// end with a different allocation watermark than the control.
func TestReplayAllocationWatermark(t *testing.T) {
	usedAfter := func(ord uint64, crashInRecovery bool) (uint64, error) {
		inj := faultinject.New()
		inj.Disable()
		sys, err := build(inj)
		if err != nil {
			return 0, fmt.Errorf("build: %w", err)
		}
		_, fs, err := mount(sys)
		if err != nil {
			return 0, fmt.Errorf("mount: %w", err)
		}
		inj.CrashAt("tfs.apply.postcommit", ord)
		inj.Enable()
		crash, _ := faultinject.Run(func() error { return workload(fs, 3, 24) })
		if crash == nil {
			inj.Disable()
			return 0, fmt.Errorf("crash at tfs.apply.postcommit@%d never fired", ord)
		}
		if crashInRecovery {
			inj.CrashAt("tfs.recover.postreplay", 1)
			crash2, _ := faultinject.Run(func() error { return sys.CrashAndRecover() })
			inj.Disable()
			if crash2 == nil {
				return 0, fmt.Errorf("recovery crash at tfs.recover.postreplay never fired (ordinal %d)", ord)
			}
		} else {
			inj.Disable()
		}
		if err := sys.CrashAndRecover(); err != nil {
			return 0, fmt.Errorf("recovery (ordinal %d): %w", ord, err)
		}
		// A crash may leak blocks whose deferred frees were quarantined
		// when it hit (the safe direction — repaired here so watermarks
		// compare the live state), but must NEVER lose blocks: a block
		// reachable from the object graph with a clear bitmap bit could
		// be handed to a second owner.
		rep, err := sys.TFS.Fsck(true)
		if err != nil {
			return 0, fmt.Errorf("fsck (ordinal %d): %w", ord, err)
		}
		if rep.LostBlocks != 0 {
			return 0, fmt.Errorf("lost blocks (ordinal %d): %v %#x", ord, rep, rep.LostAddrs)
		}
		st, err := sys.TFS.Statfs()
		if err != nil {
			return 0, fmt.Errorf("statfs (ordinal %d): %w", ord, err)
		}
		return st.TotalBytes - st.FreeBytes - st.ReservedBytes, nil
	}

	for _, ord := range []uint64{1, 3, 5} {
		once, err := usedAfter(ord, false)
		if err != nil {
			t.Fatalf("control run: %v", err)
		}
		twice, err := usedAfter(ord, true)
		if err != nil {
			t.Fatalf("probe run: %v", err)
		}
		if once != twice {
			t.Errorf("ordinal %d: one replay used %d bytes, replay-then-replay-again used %d — second replay is not allocation-idempotent",
				ord, once, twice)
		}
	}
}
