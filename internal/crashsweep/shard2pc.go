package crashsweep

// Cross-shard two-phase-commit crash sweep: the process sweep in
// procsweep.go proves single-shard batches survive kill -9; this file aims
// the same harness at the 2PC windows of a sharded trusted set. A child
// process builds a TWO-shard machine on a volume file, picks a source and a
// destination directory on different shards, and per step publishes a file
// then renames it across the shard boundary — the operation that runs as a
// prepare/decide/resolve mini-transaction. A SIGKILL armed at one of the
// protocol's fault points (tfs.2pc.prepare, tfs.2pc.commit,
// tfs.2pc.resolve) kills the child inside a chosen transaction. The parent
// reopens the corpse's volume — which runs the orphan-resolution rule — and
// asserts the victim transaction resolved to exactly ONE outcome, and to
// the RIGHT one: a kill after prepare but before the coordinator's fenced
// commit must abort (the file is still at its source name), a kill any
// time after that commit must complete (the file is at its destination),
// and in no case may the file be at both names, at neither, or torn.

import (
	"fmt"
	"time"

	"github.com/aerie-fs/aerie/internal/core"
	"github.com/aerie-fs/aerie/internal/faultinject"
	"github.com/aerie-fs/aerie/internal/libfs"
	"github.com/aerie-fs/aerie/internal/pxfs"
)

// Shard2PCConfig parameterizes one child run of the 2PC sweep.
type Shard2PCConfig struct {
	// VolumePath is the volume file shared between child and parent.
	VolumePath string
	// Point and Ordinal arm the SIGKILL at the Ordinal'th hit of Point.
	// Empty Point runs fault-free (the baseline enumeration run). The
	// workload is a single sequential client, so the Ordinal'th hit of any
	// 2PC point belongs to step Ordinal-1's rename, deterministically.
	Point   string
	Ordinal uint64
	// Steps is the number of publish+cross-shard-rename rounds (default 8).
	Steps int
}

func (c *Shard2PCConfig) defaults() {
	if c.Steps == 0 {
		c.Steps = 8
	}
}

// twopcDirCount candidate directories are spread by the placement hash;
// with two shards a pair on different shards is all but guaranteed.
const twopcDirCount = 8

func twopcDir(i int) string { return fmt.Sprintf("/t%d", i) }

func twopcName(dir string, step int) string {
	return fmt.Sprintf("%s/x%02d", dir, step)
}

// twopcContent is the deterministic 1 KiB payload of step i's file. The
// file is fully synced before its rename, so survivors must match
// byte-for-byte regardless of where the kill landed.
func twopcContent(step int) []byte {
	b := make([]byte, 1024)
	for j := range b {
		b[j] = byte((step*37 + j*3 + 11) % 249)
	}
	return b
}

// twopcPickDirs returns the first candidate pair on different shards. Both
// the child and the parent derive the pair the same way, so the parent
// knows which names to check without a side channel.
func twopcPickDirs(sess *libfs.Session, fs *pxfs.FS) (src, dst string, err error) {
	first, err := fs.Stat(twopcDir(0))
	if err != nil {
		return "", "", fmt.Errorf("stat %s: %w", twopcDir(0), err)
	}
	home := sess.ShardOf(first.OID)
	for i := 1; i < twopcDirCount; i++ {
		fi, err := fs.Stat(twopcDir(i))
		if err != nil {
			return "", "", fmt.Errorf("stat %s: %w", twopcDir(i), err)
		}
		if sess.ShardOf(fi.OID) != home {
			return twopcDir(0), twopcDir(i), nil
		}
	}
	return "", "", fmt.Errorf("all %d candidate dirs landed on shard %d", twopcDirCount, home)
}

// RunShard2PCChild is the child-process body: build a 2-shard machine on
// the volume file, lay out the candidate directories, arm the kill, then
// run the publish+rename rounds. When the armed ordinal fires the process
// dies inside a transaction and this never returns; a clean completion
// returns the fault-point hit counts for the parent to sample from.
func RunShard2PCChild(cfg Shard2PCConfig) (map[string]uint64, error) {
	cfg.defaults()
	inj := faultinject.New()
	inj.Disable()
	sys, err := core.New(core.Options{
		ArenaSize:      32 << 20,
		VolumePath:     cfg.VolumePath,
		Shards:         2,
		Lease:          time.Hour,
		AcquireTimeout: 10 * time.Second,
		Faults:         inj,
	})
	if err != nil {
		return nil, err
	}
	if err := sys.Degraded(); err != nil {
		sys.Close()
		return nil, fmt.Errorf("volume degraded to volatile: %w", err)
	}
	sess, err := sys.NewSession(libfs.Config{UID: 1000, RenewEvery: time.Hour})
	if err != nil {
		return nil, err
	}
	fs := pxfs.New(sess, pxfs.Options{})
	for i := 0; i < twopcDirCount; i++ {
		if err := fs.Mkdir(twopcDir(i), 0o755); err != nil {
			return nil, fmt.Errorf("mkdir %s: %w", twopcDir(i), err)
		}
	}
	if err := fs.Sync(); err != nil {
		return nil, err
	}
	srcDir, dstDir, err := twopcPickDirs(sess, fs)
	if err != nil {
		return nil, err
	}
	if cfg.Point != "" {
		inj.KillAt(cfg.Point, cfg.Ordinal)
	}
	inj.Enable()
	for i := 0; i < cfg.Steps; i++ {
		f, err := fs.Create(twopcName(srcDir, i), 0o644)
		if err != nil {
			return nil, fmt.Errorf("step %d create: %w", i, err)
		}
		if _, err := f.Write(twopcContent(i)); err != nil {
			return nil, fmt.Errorf("step %d write: %w", i, err)
		}
		if err := f.Close(); err != nil {
			return nil, fmt.Errorf("step %d close: %w", i, err)
		}
		// The publish is durably applied before the rename, so the rename
		// is the only in-flight operation when the kill fires.
		if err := fs.Sync(); err != nil {
			return nil, fmt.Errorf("step %d sync: %w", i, err)
		}
		if err := fs.Rename(twopcName(srcDir, i), twopcName(dstDir, i)); err != nil {
			return nil, fmt.Errorf("step %d rename: %w", i, err)
		}
	}
	inj.Disable()
	counts := inj.Counts()
	if err := sess.Close(); err != nil {
		return nil, err
	}
	if err := sys.Close(); err != nil {
		return nil, fmt.Errorf("clean close: %w", err)
	}
	return counts, nil
}

// VerifyShard2PCVolume is the parent-side check: reopen the corpse's
// volume (running per-shard replay and the cross-shard orphan-resolution
// rule), then assert the victim transaction landed on the one outcome its
// kill point dictates and everything around it is intact.
func VerifyShard2PCVolume(path string, steps int, point string, ord uint64) ([]string, error) {
	sys, err := core.Open(path, core.Options{
		Lease:          time.Hour,
		AcquireTimeout: 10 * time.Second,
	})
	if err != nil {
		return nil, err
	}
	defer sys.Close()
	var fails []string
	if got := sys.Set.Shards(); got != 2 {
		fails = append(fails, fmt.Sprintf("reopened volume has %d shards, want 2", got))
	}
	if !sys.Vol.WasDirty() {
		fails = append(fails, "killed child left a clean dirty flag")
	}
	// Set-level integrity: whole-namespace mark across both shards,
	// per-shard sweep, repairs settle, and a recheck stays clean.
	rep, err := sys.Set.Fsck(true)
	if err != nil {
		return append(fails, fmt.Sprintf("fsck(repair): %v", err)), nil
	}
	if rep.LeakedBlocks != rep.RepairedBlocks {
		fails = append(fails, fmt.Sprintf("fsck left unrepaired leaks: %+v", rep))
	}
	rep2, err := sys.Set.Fsck(false)
	if err != nil {
		return append(fails, fmt.Sprintf("fsck(recheck): %v", err)), nil
	}
	if rep2.LeakedBlocks != 0 {
		fails = append(fails, fmt.Sprintf("leaks persist after repair: %+v", rep2))
	}
	sess, err := sys.NewSession(libfs.Config{UID: 2000, RenewEvery: time.Hour})
	if err != nil {
		return append(fails, fmt.Sprintf("verify mount: %v", err)), nil
	}
	defer sess.Close()
	fs := pxfs.New(sess, pxfs.Options{})
	srcDir, dstDir, err := twopcPickDirs(sess, fs)
	if err != nil {
		return append(fails, fmt.Sprintf("re-deriving dir pair: %v", err)), nil
	}
	victim := int(ord) - 1 // single sequential client: ordinal N = step N-1
	for i := 0; i < steps; i++ {
		atSrc := statOK(fs, twopcName(srcDir, i))
		atDst := statOK(fs, twopcName(dstDir, i))
		where := "nowhere"
		switch {
		case atSrc && atDst:
			where = "both"
		case atSrc:
			where = "src"
		case atDst:
			where = "dst"
		}
		var want string
		switch {
		case i < victim:
			want = "dst" // this step's transaction completed before the kill
		case i > victim:
			want = "nowhere" // the kill preceded this step's create
		case point == "tfs.2pc.prepare":
			// Prepares durable, coordinator never committed: recovery must
			// write abort tombstones and the rename never happened.
			want = "src"
		default:
			// tfs.2pc.commit / tfs.2pc.resolve: the coordinator's fenced
			// commit is durable, so recovery must complete the rename.
			want = "dst"
		}
		if where != want {
			fails = append(fails, fmt.Sprintf(
				"step %d (victim %d, point %s): file at %s, want %s", i, victim, point, where, want))
			continue
		}
		name := ""
		if atSrc {
			name = twopcName(srcDir, i)
		} else if atDst {
			name = twopcName(dstDir, i)
		}
		if name != "" {
			if msg := check2PCContent(fs, name, i); msg != "" {
				fails = append(fails, msg)
			}
		}
	}
	// Live probe of the 2PC path itself: a fresh cross-shard rename must
	// work on the recovered set.
	fails = append(fails, probe2PC(fs, srcDir, dstDir)...)
	return fails, nil
}

func statOK(fs *pxfs.FS, name string) bool {
	_, err := fs.Stat(name)
	return err == nil
}

// check2PCContent compares a surviving file byte-for-byte; the payload was
// synced before its rename, so there is no legitimate short read.
func check2PCContent(fs *pxfs.FS, name string, step int) string {
	want := twopcContent(step)
	f, err := fs.Open(name, pxfs.O_RDONLY)
	if err != nil {
		return fmt.Sprintf("step %d open %s: %v", step, name, err)
	}
	defer f.Close()
	got := make([]byte, len(want))
	if n, err := f.ReadAt(got, 0); err != nil || n != len(want) {
		return fmt.Sprintf("step %d %s: %d of %d bytes (%v)", step, name, n, len(want), err)
	}
	for j := range want {
		if got[j] != want[j] {
			return fmt.Sprintf("step %d %s: byte %d is %#x, want %#x", step, name, j, got[j], want[j])
		}
	}
	return ""
}

func probe2PC(fs *pxfs.FS, srcDir, dstDir string) []string {
	var fails []string
	src, dst := srcDir+"/probe2pc", dstDir+"/probe2pc"
	f, err := fs.Create(src, 0o644)
	if err != nil {
		return append(fails, fmt.Sprintf("probe create: %v", err))
	}
	if _, err := f.Write([]byte("alive across shards")); err != nil {
		return append(fails, fmt.Sprintf("probe write: %v", err))
	}
	_ = f.Close()
	if err := fs.Sync(); err != nil {
		return append(fails, fmt.Sprintf("probe sync: %v", err))
	}
	if err := fs.Rename(src, dst); err != nil {
		return append(fails, fmt.Sprintf("probe cross-shard rename: %v", err))
	}
	g, err := fs.Open(dst, pxfs.O_RDONLY)
	if err != nil {
		return append(fails, fmt.Sprintf("probe reopen at destination: %v", err))
	}
	defer g.Close()
	buf := make([]byte, len("alive across shards"))
	if _, err := g.ReadAt(buf, 0); err != nil {
		fails = append(fails, fmt.Sprintf("probe read: %v", err))
	} else if string(buf) != "alive across shards" {
		fails = append(fails, fmt.Sprintf("probe content %q", buf))
	}
	if statOK(fs, src) {
		fails = append(fails, "probe file present at BOTH names after rename")
	}
	return fails
}
