//go:build linux

package crashsweep

import (
	"context"
	"errors"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"syscall"
	"testing"
	"time"
)

// Child/parent protocol mirrors procsweep_test.go: the parent re-executes
// the test binary running only TestShard2PCChild, parameterized through
// environment variables; the child either completes (exit 0) or dies by
// the armed SIGKILL inside a cross-shard transaction.
const (
	env2PCChild = "AERIE_2PCSWEEP_CHILD"
	env2PCVol   = "AERIE_2PCSWEEP_VOL"
	env2PCPoint = "AERIE_2PCSWEEP_POINT"
	env2PCOrd   = "AERIE_2PCSWEEP_ORD"
	// AERIE_2PCSWEEP_FULL=1 (the tier2-shard CI job) kills at every
	// transaction ordinal instead of a sample.
	env2PCFull = "AERIE_2PCSWEEP_FULL"
)

// shard2PCPoints are the protocol's crash windows, in order: after every
// prepare is durable (recovery must abort), after the coordinator's fenced
// commit (recovery must complete), and after the coordinator applied but
// before the participants resolve (recovery must complete).
var shard2PCPoints = []string{
	"tfs.2pc.prepare",
	"tfs.2pc.commit",
	"tfs.2pc.resolve",
}

func TestShard2PCChild(t *testing.T) {
	if os.Getenv(env2PCChild) != "1" {
		t.Skip("child entry point; driven by TestShard2PCKill9Sweep")
	}
	ord, _ := strconv.ParseUint(os.Getenv(env2PCOrd), 10, 64)
	counts, err := RunShard2PCChild(Shard2PCConfig{
		VolumePath: os.Getenv(env2PCVol),
		Point:      os.Getenv(env2PCPoint),
		Ordinal:    ord,
	})
	if err != nil {
		t.Fatalf("child: %v", err)
	}
	points := make([]string, 0, len(counts))
	for p := range counts {
		points = append(points, p)
	}
	sort.Strings(points)
	for _, p := range points {
		fmt.Printf("2pcsweep-count %s %d\n", p, counts[p])
	}
}

func run2PCChild(t *testing.T, vol, point string, ord uint64) (killed bool, out string) {
	t.Helper()
	exe, err := os.Executable()
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	cmd := exec.CommandContext(ctx, exe, "-test.run=^TestShard2PCChild$", "-test.count=1")
	cmd.Env = append(os.Environ(),
		env2PCChild+"=1",
		env2PCVol+"="+vol,
		env2PCPoint+"="+point,
		env2PCOrd+"="+strconv.FormatUint(ord, 10),
	)
	outB, runErr := cmd.CombinedOutput()
	if ctx.Err() != nil {
		t.Fatalf("child hung (point %s@%d)", point, ord)
	}
	if runErr != nil {
		var ee *exec.ExitError
		if errors.As(runErr, &ee) {
			if ws, ok := ee.Sys().(syscall.WaitStatus); ok && ws.Signaled() {
				if ws.Signal() != syscall.SIGKILL {
					t.Fatalf("child died of %v, want SIGKILL (point %s@%d)", ws.Signal(), point, ord)
				}
				return true, string(outB)
			}
		}
		t.Fatalf("child failed (point %s@%d): %v\n%s", point, ord, runErr, outB)
	}
	return false, string(outB)
}

func parse2PCCounts(out string) map[string]uint64 {
	counts := map[string]uint64{}
	for _, line := range strings.Split(out, "\n") {
		fields := strings.Fields(line)
		if len(fields) == 3 && fields[0] == "2pcsweep-count" {
			if n, err := strconv.ParseUint(fields[2], 10, 64); err == nil {
				counts[fields[1]] = n
			}
		}
	}
	return counts
}

// TestShard2PCKill9Sweep is the sharding PR's crash-consistency acceptance
// test: a child is kill -9'd inside a cross-shard rename at each 2PC crash
// window, and the reopened volume must show the orphaned prepare resolved
// to exactly one outcome — abort before the coordinator's fenced commit,
// completion after it — with both shards' namespaces intact around it.
func TestShard2PCKill9Sweep(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns and kills child processes")
	}
	full := os.Getenv(env2PCFull) == "1"
	maxOrdinals := 2
	if full {
		maxOrdinals = 0 // sampleOrdinals: every ordinal
	}

	dir := t.TempDir()
	cfg := Shard2PCConfig{}
	cfg.defaults()

	// Fault-free baseline in a real child: proves the sharded workload runs
	// clean on a volume and enumerates each point's hit count. A single
	// sequential client makes the counts (and so every armed ordinal's
	// victim transaction) deterministic.
	baseVol := filepath.Join(dir, "baseline2pc.aerie")
	killed, out := run2PCChild(t, baseVol, "", 0)
	if killed {
		t.Fatal("baseline child was killed with no kill armed")
	}
	counts := parse2PCCounts(out)
	for _, point := range shard2PCPoints {
		if counts[point] != uint64(cfg.Steps) {
			t.Fatalf("baseline hit %s %d times, want %d (one per cross-shard rename):\n%s",
				point, counts[point], cfg.Steps, out)
		}
	}

	runs, kills := 0, 0
	for _, point := range shard2PCPoints {
		for _, ord := range sampleOrdinals(counts[point], maxOrdinals) {
			runs++
			vol := filepath.Join(dir, fmt.Sprintf("kill2pc-%s-%d.aerie",
				strings.ReplaceAll(point, ".", "_"), ord))
			killed, _ := run2PCChild(t, vol, point, ord)
			if !killed {
				// Deterministic single-client ordinals: a drift here means
				// the arming is broken, not scheduler noise.
				t.Errorf("%s@%d: child completed, kill never fired", point, ord)
				continue
			}
			kills++
			fails, err := VerifyShard2PCVolume(vol, cfg.Steps, point, ord)
			if err != nil {
				t.Errorf("%s@%d: reopening the corpse's volume: %v", point, ord, err)
				continue
			}
			for _, f := range fails {
				t.Errorf("%s@%d: %s", point, ord, f)
			}
		}
	}
	t.Logf("2pc sweep: %d runs, %d kills verified", runs, kills)
	if kills == 0 {
		t.Fatal("no child was ever killed: the sweep verified nothing")
	}
}
