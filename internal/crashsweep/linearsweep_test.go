//go:build linux

package crashsweep

import (
	"context"
	"errors"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"strconv"
	"strings"
	"syscall"
	"testing"
	"time"

	"github.com/aerie-fs/aerie/internal/linearize"
)

// Child/parent protocol mirrors procsweep: the parent re-executes the test
// binary running only TestLinearSweepChild, parameterized through the
// environment. Scripts never cross the boundary — both sides regenerate
// them from the seed.
const (
	envLinChild = "AERIE_LINSWEEP_CHILD"
	envLinVol   = "AERIE_LINSWEEP_VOL"
	envLinPoint = "AERIE_LINSWEEP_POINT"
	envLinOrd   = "AERIE_LINSWEEP_ORD"
	envLinSeed  = "AERIE_LINSWEEP_SEED"
)

// linSweepPoints is deliberately the pipeline's spine rather than the full
// procsweep set: the linearizing sweep pays a prefix check per kill, and
// these four points bracket every stage a window batch passes through —
// raw flush, journal commit, the group-commit fence, and parallel apply.
var linSweepPoints = []string{
	"scm.flush",
	"journal.commit",
	"tfs.groupcommit.fence",
	"tfs.apply.parallel",
}

func TestLinearSweepChild(t *testing.T) {
	if os.Getenv(envLinChild) != "1" {
		t.Skip("child entry point; driven by TestLinearCrashPrefixSweep")
	}
	ord, _ := strconv.ParseUint(os.Getenv(envLinOrd), 10, 64)
	seed, _ := strconv.ParseInt(os.Getenv(envLinSeed), 10, 64)
	counts, err := RunLinearChild(LinearConfig{
		VolumePath: os.Getenv(envLinVol),
		Seed:       seed,
		Point:      os.Getenv(envLinPoint),
		Ordinal:    ord,
	})
	if err != nil {
		t.Fatalf("child: %v", err)
	}
	for p, n := range counts {
		fmt.Printf("linsweep-count %s %d\n", p, n)
	}
}

// runLinearChildProc executes the child with a 60s guard; killed=true means
// the armed SIGKILL fired. Any other abnormal death fails the test.
func runLinearChildProc(t *testing.T, vol, point string, ord uint64, seed int64) (killed bool, out string) {
	t.Helper()
	exe, err := os.Executable()
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	cmd := exec.CommandContext(ctx, exe, "-test.run=^TestLinearSweepChild$", "-test.count=1")
	cmd.Env = append(os.Environ(),
		envLinChild+"=1",
		envLinVol+"="+vol,
		envLinPoint+"="+point,
		envLinOrd+"="+strconv.FormatUint(ord, 10),
		envLinSeed+"="+strconv.FormatInt(seed, 10),
	)
	outB, runErr := cmd.CombinedOutput()
	if ctx.Err() != nil {
		t.Fatalf("child hung (point %s@%d)", point, ord)
	}
	if runErr != nil {
		var ee *exec.ExitError
		if errors.As(runErr, &ee) {
			if ws, ok := ee.Sys().(syscall.WaitStatus); ok && ws.Signaled() {
				if ws.Signal() != syscall.SIGKILL {
					t.Fatalf("child died of %v, want SIGKILL (point %s@%d)", ws.Signal(), point, ord)
				}
				return true, string(outB)
			}
		}
		t.Fatalf("child failed (point %s@%d): %v\n%s", point, ord, runErr, outB)
	}
	return false, string(outB)
}

func parseLinCounts(out string) map[string]uint64 {
	counts := map[string]uint64{}
	for _, line := range strings.Split(out, "\n") {
		fields := strings.Fields(line)
		if len(fields) == 3 && fields[0] == "linsweep-count" {
			if n, err := strconv.ParseUint(fields[2], 10, 64); err == nil {
				counts[fields[1]] = n
			}
		}
	}
	return counts
}

// TestLinearCrashPrefixSweep kill -9's a child running the randomized
// concurrent write workload at sampled ordinals of each swept point, then
// requires the surviving volume to recover (dirty flag, clean repair) to a
// state that is a prefix-consistent linearization of every client's script.
func TestLinearCrashPrefixSweep(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns and kills many child processes")
	}
	seed := linearize.Seed(2026)
	t.Logf("linear crash sweep seed %d (replay with AERIE_SEED=%d)", seed, seed)
	dir := t.TempDir()
	cfg := LinearConfig{Seed: seed}
	cfg.defaults()

	baseVol := filepath.Join(dir, "baseline.aerie")
	killed, out := runLinearChildProc(t, baseVol, "", 0, seed)
	if killed {
		t.Fatal("baseline child was killed with no kill armed")
	}
	counts := parseLinCounts(out)
	if len(counts) == 0 {
		t.Fatalf("baseline child reported no fault-point counts:\n%s", out)
	}
	// The fault-free baseline volume must itself check out: the full
	// scripts are a prefix of themselves.
	if fails, err := VerifyLinearVolume(baseVol, cfg); err != nil {
		t.Fatalf("baseline verify: %v", err)
	} else {
		for _, f := range fails {
			// The baseline closed cleanly, so the dirty-flag demand is the
			// one check that legitimately does not apply to it.
			if !strings.Contains(f, "dirty flag") {
				t.Errorf("baseline: %s", f)
			}
		}
	}

	runs, kills, skips := 0, 0, 0
	for _, point := range linSweepPoints {
		hits := counts[point]
		if hits == 0 {
			t.Errorf("point %s never fired in the baseline workload", point)
			continue
		}
		// Concurrent scheduling makes per-point hit counts drift between
		// the baseline run and the kill runs, so the tail ordinals of the
		// baseline are often never reached when the kill is armed. Sample
		// from the first half of the baseline's hits: still a mid-run
		// kill, but robust to the drift.
		for _, ord := range sampleOrdinals(hits/2+1, 2) {
			runs++
			vol := filepath.Join(dir, fmt.Sprintf("kill-%s-%d.aerie", strings.ReplaceAll(point, "/", "_"), ord))
			killed, _ := runLinearChildProc(t, vol, point, ord, seed)
			if !killed {
				skips++
				continue
			}
			kills++
			fails, err := VerifyLinearVolume(vol, cfg)
			if err != nil {
				t.Errorf("%s@%d: reopening the corpse's volume: %v", point, ord, err)
				continue
			}
			for _, f := range fails {
				t.Errorf("%s@%d: %s", point, ord, f)
			}
		}
	}
	t.Logf("linearsweep: %d runs, %d kills verified, %d drift-skips", runs, kills, skips)
	if kills == 0 {
		t.Fatal("no child was ever killed: the sweep verified nothing")
	}
}
