package crashsweep

import (
	"os"
	"strconv"
	"testing"
)

// TestSweepAllPoints is the acceptance test for the crash-recovery
// hardening: every fault point the workload or recovery exercises is
// crashed into at sampled ordinals, and every recovered volume must pass
// Fsck(repair) with zero unrepaired inconsistencies, show zero leaked
// blocks on recheck, and still serve a fresh client.
//
// AERIE_CRASHSWEEP_ORDINALS widens the per-point ordinal sampling (the
// tier2-crash make target sets it; -1 sweeps every ordinal).
func TestSweepAllPoints(t *testing.T) {
	ordinals := 2
	if v := os.Getenv("AERIE_CRASHSWEEP_ORDINALS"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil {
			t.Fatalf("bad AERIE_CRASHSWEEP_ORDINALS %q: %v", v, err)
		}
		ordinals = n
	}
	res, err := Sweep(Config{
		Seed:                1,
		Steps:               24,
		MaxOrdinalsPerPoint: ordinals,
		Logf:                t.Logf,
	})
	if err != nil {
		t.Fatalf("sweep: %v", err)
	}
	t.Logf("\n%s", res)
	if fails := res.Failures(); len(fails) > 0 {
		for _, f := range fails {
			t.Errorf("consistency violation: %s", f)
		}
	}
	if res.Crashes() == 0 {
		t.Fatal("sweep fired no crashes at all")
	}

	// The sweep must actually enumerate the cross-layer points the
	// injector is threaded through; an empty baseline for any of these
	// means a layer came unwired.
	mustSee := []string{
		"scm.flush",
		"journal.append",
		"journal.commit",
		"journal.commit.publish",
		"journal.replay.record",
		"tfs.apply.postcommit",
		"tfs.apply.checkpoint",
		"tfs.recover",
		"rpc.call",
		"rpc.reply",
		"libfs.logop",
		"libfs.flush.preship",
	}
	seen := map[string]PointResult{}
	for _, p := range res.Points {
		seen[p.Point] = p
	}
	for _, want := range mustSee {
		p, ok := seen[want]
		if !ok {
			t.Errorf("fault point %s never enumerated — layer unwired?", want)
			continue
		}
		if p.Crashes == 0 {
			t.Errorf("fault point %s enumerated but no crash ever fired there", want)
		}
	}
}
