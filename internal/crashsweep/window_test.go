package crashsweep

import (
	"fmt"
	"testing"
	"time"

	"github.com/aerie-fs/aerie/internal/core"
	"github.com/aerie-fs/aerie/internal/faultinject"
	"github.com/aerie-fs/aerie/internal/libfs"
	"github.com/aerie-fs/aerie/internal/lockservice"
	"github.com/aerie-fs/aerie/internal/sobj"
)

// groupCommitPoints are the write-pipeline fault points added with the
// group-commit engine: membership fixed (nothing staged), just before the
// single fence (staged but unpublished), and just after it (published,
// apply about to start — possibly on parallel workers).
var groupCommitPoints = []string{
	"tfs.groupcommit.coalesce",
	"tfs.groupcommit.fence",
	"tfs.apply.parallel",
}

// windowWorkload mounts a pipelined session (Window 4, one-op batches) and
// links numbered names under the root, returning the session. Each link is
// its own sequenced window batch, so after a crash the set of surviving
// names tells exactly which window prefix applied.
func windowWorkload(sys *core.System, steps int) error {
	sess, err := sys.NewSession(libfs.Config{
		UID:        1000,
		BatchLimit: 1, // every LogOp rotates a batch
		Window:     4,
		RenewEvery: time.Hour,
	})
	if err != nil {
		return err
	}
	lock := sess.Root.Lock()
	if err := sess.Clerk.Acquire(lock, lockservice.X, true); err != nil {
		return err
	}
	oid, err := sess.CreateMFileStaged(0o644, sobj.DefaultExtentLog)
	if err != nil {
		return err
	}
	if err := sess.DirInsert(sess.Root, []byte("base"), oid, lock); err != nil {
		return err
	}
	if err := sess.Sync(); err != nil {
		return err
	}
	for i := 0; i < steps; i++ {
		if err := sess.DirInsert(sess.Root, []byte(fmt.Sprintf("p%02d", i)), oid, lock); err != nil {
			return err
		}
	}
	return sess.Sync()
}

// TestWindowPrefixConsistency crashes a pipelined-window workload at every
// sampled ordinal of each group-commit fault point and asserts two things
// after power-loss recovery: the volume checks clean (the usual sweep
// invariant), and the completion window survived as a PREFIX — if link i
// is visible then every link before i is too. A hole would mean a later
// window batch applied while an earlier one was lost, i.e. the group
// commit published or replayed out of window order.
func TestWindowPrefixConsistency(t *testing.T) {
	const steps = 8

	// Fault-free baseline: count each point's hits during this workload.
	base := faultinject.New()
	base.Disable()
	bsys, err := build(base)
	if err != nil {
		t.Fatal(err)
	}
	base.Enable()
	if err := windowWorkload(bsys, steps); err != nil {
		t.Fatalf("baseline workload: %v", err)
	}
	base.Disable()
	counts := base.Counts()

	for _, point := range groupCommitPoints {
		hits := counts[point]
		if hits == 0 {
			t.Fatalf("point %s never fired in the pipelined workload", point)
		}
		for _, ord := range sampleOrdinals(hits, 3) {
			t.Run(fmt.Sprintf("%s@%d", point, ord), func(t *testing.T) {
				inj := faultinject.New()
				inj.Disable()
				sys, err := build(inj)
				if err != nil {
					t.Fatal(err)
				}
				inj.CrashAt(point, ord)
				inj.Enable()
				crash, werr := faultinject.Run(func() error { return windowWorkload(sys, steps) })
				inj.Disable()
				if crash == nil {
					if werr != nil {
						t.Fatalf("workload error without crash: %v", werr)
					}
					t.Skipf("ordinal %d drifted out of reach", ord)
				}
				if err := sys.CrashAndRecover(); err != nil {
					t.Fatalf("recovery: %v", err)
				}
				if fails := verify(sys); len(fails) > 0 {
					t.Fatalf("verify: %v", fails)
				}
				// Prefix check through a fresh session.
				sess, err := sys.NewSession(libfs.Config{UID: 1001, RenewEvery: time.Hour})
				if err != nil {
					t.Fatal(err)
				}
				defer sess.Close()
				seenHole := -1
				for i := 0; i < steps; i++ {
					_, ok, err := sess.DirLookup(sess.Root, []byte(fmt.Sprintf("p%02d", i)))
					if err != nil {
						t.Fatalf("lookup p%02d: %v", i, err)
					}
					if !ok {
						if seenHole < 0 {
							seenHole = i
						}
					} else if seenHole >= 0 {
						t.Fatalf("window not prefix-consistent: p%02d applied but p%02d lost", i, seenHole)
					}
				}
			})
		}
	}
}
