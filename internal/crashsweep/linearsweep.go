package crashsweep

// Linearizing crash sweep: procsweep proves that a SIGKILLed process leaves
// each client's fixed publish sequence as a strict prefix; this file sweeps
// the same kill points under the randomized linearize workload and asks the
// stronger question — is the surviving volume state a prefix-consistent
// linearization of the scripts the dead clients were executing? The child
// re-runs seed-deterministic write-only scripts (linearize.GenerateCrashScripts,
// disjoint per-client namespaces) through pipelined PXFS sessions with a
// kill armed; the parent regenerates the same scripts from the same seed,
// reopens the corpse's volume, and hands each client's surviving contents
// to linearize.CheckCrashPrefix, which accepts exactly "some prefix fully
// applied, at most the frontier op caught mid-batch".

import (
	"errors"
	"fmt"
	"sort"
	"time"

	"github.com/aerie-fs/aerie/internal/conformance"
	"github.com/aerie-fs/aerie/internal/core"
	"github.com/aerie-fs/aerie/internal/faultinject"
	"github.com/aerie-fs/aerie/internal/libfs"
	"github.com/aerie-fs/aerie/internal/linearize"
	"github.com/aerie-fs/aerie/internal/pxfs"
)

// LinearConfig parameterizes one child run of the linearizing sweep.
type LinearConfig struct {
	// VolumePath is the volume file shared between child and parent.
	VolumePath string
	// Seed regenerates the scripts identically in child and parent.
	Seed int64
	// Point and Ordinal arm the SIGKILL (empty Point: fault-free baseline).
	Point   string
	Ordinal uint64
	// Clients and Steps shape the workload (defaults 3 and 24).
	Clients int
	Steps   int
}

func (c *LinearConfig) defaults() {
	if c.Clients == 0 {
		c.Clients = 3
	}
	if c.Steps == 0 {
		c.Steps = 24
	}
}

// LinearScripts regenerates the sweep's deterministic scripts; child and
// parent both call this, so they agree without any state crossing the kill.
func LinearScripts(cfg LinearConfig) [][]linearize.Op {
	cfg.defaults()
	return linearize.GenerateCrashScripts(linearize.GenConfig{
		Seed:         cfg.Seed,
		Clients:      cfg.Clients,
		OpsPerClient: cfg.Steps,
	})
}

// runLinearClient executes one script through a pipelined session. The ops
// are fire-and-forget mutations: the prefix check needs only the volume
// they leave behind, not recorded outcomes.
func runLinearClient(sys *core.System, k int, script []linearize.Op) error {
	sess, err := sys.NewSession(libfs.Config{
		UID:        uint32(1000 + k),
		BatchLimit: 1,
		Window:     4,
		RenewEvery: time.Hour,
	})
	if err != nil {
		return err
	}
	fs := conformance.PXClient{FS: pxfs.New(sess, pxfs.Options{NameCache: true})}
	for step, op := range script {
		var err error
		switch op.Kind {
		case linearize.KPut:
			err = fs.Put(op.Path, op.Data)
		case linearize.KAppend:
			err = fs.Append(op.Path, op.Data)
		case linearize.KTruncate:
			err = fs.Truncate(op.Path, op.Size)
		default:
			err = fmt.Errorf("op kind %v has no place in a crash script", op.Kind)
		}
		if err != nil {
			return fmt.Errorf("client %d step %d %s: %w", k, step, op, err)
		}
	}
	return sess.Close()
}

// RunLinearChild is the child-process body: build the machine on the volume
// file, create the per-client directories, arm the kill, run the scripts
// concurrently. Killed mid-run it never returns; run fault-free it returns
// the per-point hit counts the parent samples ordinals from.
func RunLinearChild(cfg LinearConfig) (map[string]uint64, error) {
	cfg.defaults()
	scripts := LinearScripts(cfg)
	inj := faultinject.New()
	inj.Disable()
	sys, err := buildProc(cfg.VolumePath, inj)
	if err != nil {
		return nil, err
	}
	// Publish the per-client directories before arming: a kill during setup
	// would only reprove what procsweep already covers, and the prefix
	// check wants the interesting window — the concurrent script bodies.
	setup, err := sys.NewSession(libfs.Config{UID: 999, RenewEvery: time.Hour})
	if err != nil {
		return nil, err
	}
	setupFS := pxfs.New(setup, pxfs.Options{})
	for k := 0; k < cfg.Clients; k++ {
		if err := setupFS.Mkdir(fmt.Sprintf("/lz%d", k), 0o755); err != nil {
			return nil, fmt.Errorf("mkdir /lz%d: %w", k, err)
		}
	}
	if err := setup.Close(); err != nil {
		return nil, fmt.Errorf("setup close: %w", err)
	}
	if cfg.Point != "" {
		inj.KillAt(cfg.Point, cfg.Ordinal)
	}
	inj.Enable()
	errs := make(chan error, cfg.Clients)
	for k := 0; k < cfg.Clients; k++ {
		go func(k int) { errs <- runLinearClient(sys, k, scripts[k]) }(k)
	}
	for k := 0; k < cfg.Clients; k++ {
		if err := <-errs; err != nil {
			return nil, err
		}
	}
	inj.Disable()
	counts := inj.Counts()
	if err := sys.Close(); err != nil {
		return nil, fmt.Errorf("clean close: %w", err)
	}
	return counts, nil
}

// VerifyLinearVolume is the parent-side check after the child was killed:
// reopen the volume, require the dirty flag and a clean repair, then read
// back every path each script touches and require each client's surviving
// state to be a prefix-consistent linearization of its script. Returns the
// consistency failures (nil: the volume recovered to a legal prefix).
func VerifyLinearVolume(path string, cfg LinearConfig) ([]string, error) {
	cfg.defaults()
	scripts := LinearScripts(cfg)
	sys, err := core.Open(path, core.Options{
		Lease:          time.Hour,
		AcquireTimeout: 10 * time.Second,
	})
	if err != nil {
		return nil, err
	}
	defer sys.Close()
	var fails []string
	if !sys.Vol.WasDirty() {
		fails = append(fails, "killed child left a clean dirty flag")
	}
	fails = append(fails, verify(sys)...)
	sess, err := sys.NewSession(libfs.Config{UID: 2000, RenewEvery: time.Hour})
	if err != nil {
		return append(fails, fmt.Sprintf("verify mount: %v", err)), nil
	}
	defer sess.Close()
	fs := conformance.PXClient{FS: pxfs.New(sess, pxfs.Options{})}
	for k, script := range scripts {
		paths := map[string]bool{}
		for _, op := range script {
			paths[op.Path] = true
		}
		observed := linearize.State{}
		sorted := make([]string, 0, len(paths))
		for p := range paths {
			sorted = append(sorted, p)
		}
		sort.Strings(sorted)
		for _, p := range sorted {
			data, err := fs.Read(p)
			switch {
			case err == nil:
				observed[p] = string(data)
			case errors.Is(err, linearize.ErrNotExist):
			default:
				fails = append(fails, fmt.Sprintf("client %d read %s: %v", k, p, err))
			}
		}
		rep := linearize.CheckCrashPrefix(script, observed)
		if !rep.Ok {
			fails = append(fails, fmt.Sprintf(
				"client %d state is no prefix of its script: %s", k, rep.Detail))
		}
	}
	return fails, nil
}
