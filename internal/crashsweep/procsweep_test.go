//go:build linux

package crashsweep

import (
	"context"
	"errors"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"syscall"
	"testing"
	"time"
)

// Child/parent protocol: the parent re-executes its own test binary running
// only TestProcSweepChild, with the run parameterized through environment
// variables. The child either finishes (exit 0: the armed ordinal drifted
// out of reach, or it was a baseline run and the counts go to stdout) or is
// SIGKILLed mid-workload by its armed fault point.
const (
	envProcChild = "AERIE_PROCSWEEP_CHILD"
	envProcVol   = "AERIE_PROCSWEEP_VOL"
	envProcPoint = "AERIE_PROCSWEEP_POINT"
	envProcOrd   = "AERIE_PROCSWEEP_ORD"
	// AERIE_PROCSWEEP_FULL=1 (the tier2-persist CI job) widens the point
	// set and samples more ordinals per point.
	envProcFull = "AERIE_PROCSWEEP_FULL"
)

// procSweepPoints is the default (tier-1) point set: the SCM flush path,
// the journal commit, and the whole group-commit/parallel-apply pipeline
// added with the windowed write path.
var procSweepPoints = []string{
	"scm.flush",
	"journal.commit",
	"tfs.groupcommit.coalesce",
	"tfs.groupcommit.fence",
	"tfs.apply.parallel",
	"tfs.apply.checkpoint",
}

// procSweepPointsFull extends the sweep to every other store-side point the
// workload exercises (tier2-persist).
var procSweepPointsFull = []string{
	"scm.stream",
	"scm.bflush",
	"alloc.alloc",
	"journal.append",
	"journal.commit.publish",
	"journal.commit.published",
	"journal.checkpoint",
	"tfs.apply.action",
	"tfs.apply.postcommit",
	"tfs.prealloc.postcommit",
	"libfs.logop",
	"libfs.write",
	"libfs.flush.preship",
	"libfs.flush.postship",
	"rpc.call",
	"rpc.reply",
}

func TestProcSweepChild(t *testing.T) {
	if os.Getenv(envProcChild) != "1" {
		t.Skip("child entry point; driven by TestProcessKill9Sweep")
	}
	ord, _ := strconv.ParseUint(os.Getenv(envProcOrd), 10, 64)
	counts, err := RunProcChild(ProcConfig{
		VolumePath: os.Getenv(envProcVol),
		Point:      os.Getenv(envProcPoint),
		Ordinal:    ord,
	})
	if err != nil {
		t.Fatalf("child: %v", err)
	}
	// Baseline runs report the per-point hit counts for the parent to
	// sample ordinals from.
	points := make([]string, 0, len(counts))
	for p := range counts {
		points = append(points, p)
	}
	sort.Strings(points)
	for _, p := range points {
		fmt.Printf("procsweep-count %s %d\n", p, counts[p])
	}
}

// runProcChild executes the child with a 60s guard and reports how it died:
// killed=true means SIGKILL (the armed fault fired), false a clean exit.
// Anything else — timeout, crash by another signal, nonzero exit — fails
// the test immediately.
func runProcChild(t *testing.T, vol, point string, ord uint64) (killed bool, out string) {
	t.Helper()
	exe, err := os.Executable()
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	cmd := exec.CommandContext(ctx, exe, "-test.run=^TestProcSweepChild$", "-test.count=1")
	cmd.Env = append(os.Environ(),
		envProcChild+"=1",
		envProcVol+"="+vol,
		envProcPoint+"="+point,
		envProcOrd+"="+strconv.FormatUint(ord, 10),
	)
	outB, runErr := cmd.CombinedOutput()
	if ctx.Err() != nil {
		t.Fatalf("child hung (point %s@%d)", point, ord)
	}
	if runErr != nil {
		var ee *exec.ExitError
		if errors.As(runErr, &ee) {
			if ws, ok := ee.Sys().(syscall.WaitStatus); ok && ws.Signaled() {
				if ws.Signal() != syscall.SIGKILL {
					t.Fatalf("child died of %v, want SIGKILL (point %s@%d)", ws.Signal(), point, ord)
				}
				return true, string(outB)
			}
		}
		t.Fatalf("child failed (point %s@%d): %v\n%s", point, ord, runErr, outB)
	}
	return false, string(outB)
}

// parseProcCounts extracts the baseline per-point hit counts the child
// printed.
func parseProcCounts(out string) map[string]uint64 {
	counts := map[string]uint64{}
	for _, line := range strings.Split(out, "\n") {
		fields := strings.Fields(line)
		if len(fields) == 3 && fields[0] == "procsweep-count" {
			n, err := strconv.ParseUint(fields[2], 10, 64)
			if err == nil {
				counts[fields[1]] = n
			}
		}
	}
	return counts
}

// TestProcessKill9Sweep is the tentpole acceptance test: a child process is
// kill -9'd mid-write-burst at sampled ordinals of each swept fault point,
// and the parent must recover the volume file the corpse left behind —
// dirty flag observed, Fsck(repair) clean with zero remaining leaks, every
// client's published window a strict prefix with intact contents, and a
// fresh client able to write.
func TestProcessKill9Sweep(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns and kills many child processes")
	}
	full := os.Getenv(envProcFull) == "1"
	maxOrdinals := 2
	points := procSweepPoints
	if full {
		maxOrdinals = 3
		points = append(append([]string{}, procSweepPoints...), procSweepPointsFull...)
	}

	dir := t.TempDir()
	cfg := ProcConfig{}
	cfg.defaults()

	// Baseline child run, fault-free: enumerate each point's hit count in a
	// real child process (same binary, same environment, same scheduler)
	// and prove the workload itself runs clean on a volume.
	baseVol := filepath.Join(dir, "baseline.aerie")
	killed, out := runProcChild(t, baseVol, "", 0)
	if killed {
		t.Fatal("baseline child was killed with no kill armed")
	}
	counts := parseProcCounts(out)
	if len(counts) == 0 {
		t.Fatalf("baseline child reported no fault-point counts:\n%s", out)
	}

	runs, kills, skips := 0, 0, 0
	for _, point := range points {
		hits := counts[point]
		if hits == 0 {
			if full {
				t.Errorf("point %s never fired in the baseline workload", point)
			}
			continue
		}
		for _, ord := range sampleOrdinals(hits, maxOrdinals) {
			runs++
			vol := filepath.Join(dir, fmt.Sprintf("kill-%s-%d.aerie", strings.ReplaceAll(point, "/", "_"), ord))
			killed, _ := runProcChild(t, vol, point, ord)
			if !killed {
				// Two concurrent clients make ordinals drift between runs;
				// an unreached kill is a clean completion, not a failure.
				skips++
				continue
			}
			kills++
			fails, err := VerifyProcVolume(vol, cfg.Clients, cfg.Steps)
			if err != nil {
				t.Errorf("%s@%d: reopening the corpse's volume: %v", point, ord, err)
				continue
			}
			for _, f := range fails {
				t.Errorf("%s@%d: %s", point, ord, f)
			}
		}
	}
	t.Logf("procsweep: %d runs, %d kills verified, %d drift-skips", runs, kills, skips)
	if kills == 0 {
		t.Fatal("no child was ever killed: the sweep verified nothing")
	}
}
