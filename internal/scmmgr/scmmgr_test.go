package scmmgr

import (
	"errors"
	"testing"
	"testing/quick"

	"github.com/aerie-fs/aerie/internal/costmodel"
	"github.com/aerie-fs/aerie/internal/scm"
)

func newMgr(t *testing.T, size uint64) *Manager {
	t.Helper()
	mem := scm.New(scm.Config{Size: size})
	mgr, err := FormatAndAttach(mem, nil)
	if err != nil {
		t.Fatal(err)
	}
	return mgr
}

func TestFormatAndAttach(t *testing.T) {
	mem := scm.New(scm.Config{Size: 8 << 20})
	if _, err := Attach(mem, nil); !errors.Is(err, ErrBadMagic) {
		t.Fatalf("attach unformatted: %v", err)
	}
	if err := Format(mem); err != nil {
		t.Fatal(err)
	}
	if _, err := Attach(mem, nil); err != nil {
		t.Fatal(err)
	}
}

func TestCreatePartitionFirstFit(t *testing.T) {
	mgr := newMgr(t, 16<<20)
	a, err := mgr.CreatePartition(1<<20, 100)
	if err != nil {
		t.Fatal(err)
	}
	b, err := mgr.CreatePartition(2<<20, 100)
	if err != nil {
		t.Fatal(err)
	}
	ia, _ := mgr.Partition(a)
	ib, _ := mgr.Partition(b)
	if ia.Size != 1<<20 || ib.Size != 2<<20 {
		t.Fatalf("sizes %d %d", ia.Size, ib.Size)
	}
	if ia.Start+ia.Size > ib.Start && ib.Start+ib.Size > ia.Start {
		t.Fatal("partitions overlap")
	}
	region, _ := scm.Read64(mgr.Mem(), offRegionSize)
	if ia.Start < region || ib.Start < region {
		t.Fatal("partition inside manager region")
	}
	if ia.Owner != 100 {
		t.Fatalf("owner = %d", ia.Owner)
	}
}

func TestCreatePartitionExhaustion(t *testing.T) {
	mgr := newMgr(t, 4<<20)
	if _, err := mgr.CreatePartition(64<<20, 1); err == nil {
		t.Fatal("want out-of-space error")
	}
}

func TestPartitionLookupErrors(t *testing.T) {
	mgr := newMgr(t, 4<<20)
	if _, err := mgr.Partition(7); !errors.Is(err, ErrNoPartition) {
		t.Fatalf("unused slot: %v", err)
	}
	if _, err := mgr.Partition(999); !errors.Is(err, ErrNoPartition) {
		t.Fatalf("out-of-range slot: %v", err)
	}
}

func TestExtentProtectionEnforced(t *testing.T) {
	mgr := newMgr(t, 16<<20)
	tfs := NewProcess(0)
	part, err := mgr.CreatePartition(4<<20, 0)
	if err != nil {
		t.Fatal(err)
	}
	info, _ := mgr.Partition(part)

	// Grant group 7 read/write on the first 4 pages, read-only on the next 4.
	if err := mgr.CreateExtent(tfs, part, info.Start, 4, MakeACL(7, RightRead|RightWrite)); err != nil {
		t.Fatal(err)
	}
	if err := mgr.CreateExtent(tfs, part, info.Start+4*scm.PageSize, 4, MakeACL(7, RightRead)); err != nil {
		t.Fatal(err)
	}

	member := NewProcess(42, 7)
	outsider := NewProcess(43, 9)
	mm, err := mgr.Mount(member, part)
	if err != nil {
		t.Fatal(err)
	}
	om, err := mgr.Mount(outsider, part)
	if err != nil {
		t.Fatal(err)
	}

	buf := []byte("data")
	if err := mm.Write(info.Start, buf); err != nil {
		t.Fatalf("member write rw extent: %v", err)
	}
	if err := mm.Read(info.Start, buf); err != nil {
		t.Fatalf("member read rw extent: %v", err)
	}
	if err := mm.Write(info.Start+4*scm.PageSize, buf); !errors.Is(err, ErrProtection) {
		t.Fatalf("member write ro extent: %v", err)
	}
	if err := mm.Read(info.Start+4*scm.PageSize, buf); err != nil {
		t.Fatalf("member read ro extent: %v", err)
	}
	if err := om.Read(info.Start, buf); !errors.Is(err, ErrProtection) {
		t.Fatalf("outsider read: %v", err)
	}
	// Pages with no extent at all deny everything.
	if err := mm.Read(info.Start+100*scm.PageSize, buf); !errors.Is(err, ErrProtection) {
		t.Fatalf("unmapped page read: %v", err)
	}
	// Accesses outside the partition bounds fail even for members.
	if err := mm.Read(0, buf); !errors.Is(err, ErrProtection) {
		t.Fatalf("read outside partition: %v", err)
	}
}

func TestOnlyOwnerManipulatesExtents(t *testing.T) {
	mgr := newMgr(t, 8<<20)
	part, _ := mgr.CreatePartition(1<<20, 0)
	info, _ := mgr.Partition(part)
	interloper := NewProcess(99)
	if err := mgr.CreateExtent(interloper, part, info.Start, 1, MakeACL(7, RightRead)); !errors.Is(err, ErrNotOwner) {
		t.Fatalf("non-owner create extent: %v", err)
	}
	if err := mgr.MProtectExtent(interloper, part, info.Start, 1, MakeACL(7, RightRead)); !errors.Is(err, ErrNotOwner) {
		t.Fatalf("non-owner mprotect: %v", err)
	}
}

func TestMProtectInvalidatesAndRevokes(t *testing.T) {
	mgr := newMgr(t, 8<<20)
	tfs := NewProcess(0)
	part, _ := mgr.CreatePartition(1<<20, 0)
	info, _ := mgr.Partition(part)
	if err := mgr.CreateExtent(tfs, part, info.Start, 2, MakeACL(7, RightRead|RightWrite)); err != nil {
		t.Fatal(err)
	}
	proc := NewProcess(42, 7)
	mp, _ := mgr.Mount(proc, part)
	buf := []byte("x")
	if err := mp.Write(info.Start, buf); err != nil {
		t.Fatal(err)
	}
	faultsBefore := mgr.Faults.Load()
	// Second access hits the soft TLB: no new fault.
	if err := mp.Write(info.Start+8, buf); err != nil {
		t.Fatal(err)
	}
	if mgr.Faults.Load() != faultsBefore {
		t.Fatal("soft TLB did not cache the fault")
	}
	// Revoke write; referenced page must be shot down and writes must fail.
	if err := mgr.MProtectExtent(tfs, part, info.Start, 2, MakeACL(7, RightRead)); err != nil {
		t.Fatal(err)
	}
	if mgr.Shootdowns.Load() != 1 {
		t.Fatalf("shootdowns = %d, want 1 (only referenced pages)", mgr.Shootdowns.Load())
	}
	if err := mp.Write(info.Start, buf); !errors.Is(err, ErrProtection) {
		t.Fatalf("write after revoke: %v", err)
	}
	if err := mp.Read(info.Start, buf); err != nil {
		t.Fatalf("read after downgrade to ro: %v", err)
	}
}

func TestUnmountStopsShootdowns(t *testing.T) {
	mgr := newMgr(t, 8<<20)
	tfs := NewProcess(0)
	part, _ := mgr.CreatePartition(1<<20, 0)
	info, _ := mgr.Partition(part)
	_ = mgr.CreateExtent(tfs, part, info.Start, 1, MakeACL(7, RightRead|RightWrite))
	proc := NewProcess(42, 7)
	mp, _ := mgr.Mount(proc, part)
	_ = mp.Write(info.Start, []byte("x"))
	mgr.Unmount(mp)
	_ = mgr.MProtectExtent(tfs, part, info.Start, 1, MakeACL(7, RightRead))
	if mgr.Shootdowns.Load() != 0 {
		t.Fatal("unmounted mapping still shot down")
	}
}

func TestAttachSurvivesCrash(t *testing.T) {
	mem := scm.New(scm.Config{Size: 8 << 20, TrackPersistence: true})
	mgr, err := FormatAndAttach(mem, nil)
	if err != nil {
		t.Fatal(err)
	}
	tfs := NewProcess(0)
	part, err := mgr.CreatePartition(1<<20, 0)
	if err != nil {
		t.Fatal(err)
	}
	info, _ := mgr.Partition(part)
	if err := mgr.CreateExtent(tfs, part, info.Start, 2, MakeACL(7, RightRead|RightWrite)); err != nil {
		t.Fatal(err)
	}
	mem.Crash()
	mgr2, err := Attach(mem, nil)
	if err != nil {
		t.Fatalf("attach after crash: %v", err)
	}
	info2, err := mgr2.Partition(part)
	if err != nil {
		t.Fatalf("partition lost in crash: %v", err)
	}
	if info2 != info {
		t.Fatalf("partition info changed: %+v vs %+v", info2, info)
	}
	// The extent ACLs persist too.
	proc := NewProcess(42, 7)
	mp, _ := mgr2.Mount(proc, part)
	if err := mp.Write(info.Start, []byte("y")); err != nil {
		t.Fatalf("extent ACL lost in crash: %v", err)
	}
}

func TestACLPacking(t *testing.T) {
	a := MakeACL(0x3fffffff, RightRead|RightWrite)
	if a.GID() != 0x3fffffff || a.Rights() != 3 {
		t.Fatalf("gid=%#x rights=%#x", a.GID(), a.Rights())
	}
}

// Property: a mapping never grants access that the extent ACL plus the
// process's groups don't allow.
func TestQuickProtectionSound(t *testing.T) {
	mgr := newMgr(t, 16<<20)
	tfs := NewProcess(0)
	part, err := mgr.CreatePartition(2<<20, 0)
	if err != nil {
		t.Fatal(err)
	}
	info, _ := mgr.Partition(part)
	npages := int(info.Size / scm.PageSize)

	f := func(gid8 uint8, rights uint8, procGid8 uint8, pageSel uint16, writeOp bool) bool {
		gid := uint32(gid8)%4 + 1
		procGid := uint32(procGid8)%4 + 1
		r := uint32(rights) % 4
		page := int(pageSel) % npages
		addr := info.Start + uint64(page)*scm.PageSize
		if err := mgr.MProtectExtent(tfs, part, addr, 1, MakeACL(gid, r)); err != nil {
			return false
		}
		proc := NewProcess(1000, procGid)
		mp, err := mgr.Mount(proc, part)
		if err != nil {
			return false
		}
		defer mgr.Unmount(mp)
		var opErr error
		if writeOp {
			opErr = mp.Write(addr, []byte{1})
		} else {
			opErr = mp.Read(addr, []byte{0})
		}
		need := uint32(RightRead)
		if writeOp {
			need = RightWrite
		}
		allowed := procGid == gid && r&need != 0
		return (opErr == nil) == allowed
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestShootdownCostCharged(t *testing.T) {
	costs := &costmodel.Costs{TLBShootdown: 1} // nonzero but negligible
	mem := scm.New(scm.Config{Size: 8 << 20})
	mgr, err := FormatAndAttach(mem, costs)
	if err != nil {
		t.Fatal(err)
	}
	tfs := NewProcess(0)
	part, _ := mgr.CreatePartition(1<<20, 0)
	info, _ := mgr.Partition(part)
	_ = mgr.CreateExtent(tfs, part, info.Start, 8, MakeACL(7, RightRead|RightWrite))
	proc := NewProcess(42, 7)
	mp, _ := mgr.Mount(proc, part)
	for i := 0; i < 8; i++ {
		_ = mp.Write(info.Start+uint64(i)*scm.PageSize, []byte{1})
	}
	_ = mgr.MProtectExtent(tfs, part, info.Start, 8, MakeACL(7, RightRead))
	if got := mgr.Shootdowns.Load(); got != 8 {
		t.Fatalf("shootdowns = %d, want 8", got)
	}
}
