package scmmgr

import (
	"bytes"
	"errors"
	"math/rand"
	"sync"
	"testing"

	"github.com/aerie-fs/aerie/internal/scm"
)

// TestMappingSliceEquivalence checks that Slice and Read through a mapping
// return the same bytes and enforce the same ACL failures.
func TestMappingSliceEquivalence(t *testing.T) {
	mgr := newMgr(t, 16<<20)
	tfs := NewProcess(1)
	part, err := mgr.CreatePartition(1<<20, 1)
	if err != nil {
		t.Fatal(err)
	}
	info, _ := mgr.Partition(part)
	// First half readable by group 7, second half not.
	half := int(info.Size / scm.PageSize / 2)
	if err := mgr.CreateExtent(tfs, part, info.Start, half, MakeACL(7, RightRead|RightWrite)); err != nil {
		t.Fatal(err)
	}
	if err := mgr.CreateExtent(tfs, part, info.Start+uint64(half)*scm.PageSize, half, MakeACL(8, RightRead)); err != nil {
		t.Fatal(err)
	}
	proc := NewProcess(100, 7)
	mp, err := mgr.Mount(proc, part)
	if err != nil {
		t.Fatal(err)
	}
	pattern := bytes.Repeat([]byte{0xa5, 0x5a}, scm.PageSize)
	if err := mgr.Mem().Write(info.Start, pattern); err != nil {
		t.Fatal(err)
	}

	got, err := mp.Slice(info.Start, len(pattern))
	if err != nil {
		t.Fatal(err)
	}
	want := make([]byte, len(pattern))
	if err := mp.Read(info.Start, want); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) || !bytes.Equal(got, pattern) {
		t.Fatal("slice != read through mapping")
	}

	denied := info.Start + uint64(half)*scm.PageSize
	if _, err := mp.Slice(denied, 8); !errors.Is(err, ErrProtection) {
		t.Fatalf("slice of unreadable extent: %v", err)
	}
	if err := mp.Read(denied, make([]byte, 8)); !errors.Is(err, ErrProtection) {
		t.Fatalf("read of unreadable extent: %v", err)
	}
	// A slice spanning the permission boundary must fail as a whole.
	if _, err := mp.Slice(denied-4, 8); !errors.Is(err, ErrProtection) {
		t.Fatalf("boundary-spanning slice: %v", err)
	}
}

// TestMappingLastReadCache checks the single-page hit cache: repeated reads
// of one page fault once, and a shootdown drops the cached page so revoked
// permissions are enforced on the next access.
func TestMappingLastReadCache(t *testing.T) {
	mgr := newMgr(t, 16<<20)
	tfs := NewProcess(1)
	part, _ := mgr.CreatePartition(1<<20, 1)
	info, _ := mgr.Partition(part)
	if err := mgr.CreateExtent(tfs, part, info.Start, 2, MakeACL(7, RightRead)); err != nil {
		t.Fatal(err)
	}
	proc := NewProcess(100, 7)
	mp, _ := mgr.Mount(proc, part)

	before := mgr.Faults.Load()
	for i := 0; i < 64; i++ {
		if _, err := mp.Slice(info.Start+uint64(i)*8, 8); err != nil {
			t.Fatal(err)
		}
	}
	if got := mgr.Faults.Load() - before; got != 1 {
		t.Fatalf("faults for repeated same-page slices = %d, want 1", got)
	}

	if err := mgr.MProtectExtent(tfs, part, info.Start, 2, MakeACL(8, RightRead)); err != nil {
		t.Fatal(err)
	}
	if _, err := mp.Slice(info.Start, 8); !errors.Is(err, ErrProtection) {
		t.Fatalf("slice after revoke: %v", err)
	}
}

// TestMappingLastReadCacheShootdownRace reproduces the interleaving where a
// reader passes the bitmap check, a shootdown then clears the bits, and the
// reader stores its cache entry afterwards. With a plain cleared-on-shootdown
// cache that stale entry would serve hits indefinitely, bypassing the revoked
// bitmap; the epoch tag must make it unconsultable.
func TestMappingLastReadCacheShootdownRace(t *testing.T) {
	mgr := newMgr(t, 16<<20)
	tfs := NewProcess(1)
	part, _ := mgr.CreatePartition(1<<20, 1)
	info, _ := mgr.Partition(part)
	if err := mgr.CreateExtent(tfs, part, info.Start, 2, MakeACL(7, RightRead)); err != nil {
		t.Fatal(err)
	}
	proc := NewProcess(100, 7)
	mp, _ := mgr.Mount(proc, part)

	// The racing reader loads the epoch and passes the bitmap check...
	if _, err := mp.Slice(info.Start, 8); err != nil {
		t.Fatal(err)
	}
	staleEpoch := mp.readEpoch.Load()
	// ...then the shootdown revokes the page and bumps the epoch...
	if err := mgr.MProtectExtent(tfs, part, info.Start, 2, MakeACL(8, RightRead)); err != nil {
		t.Fatal(err)
	}
	// ...and only now does the reader's cache store land, tagged with the
	// pre-shootdown epoch (exactly what access() would store).
	rel := (info.Start - mp.start) / scm.PageSize
	mp.lastRead.Store(staleEpoch<<32 | (rel + 1))

	// Every later single-page read of the revoked page must miss the cache
	// and fail the bitmap/ACL check, not hit the stale entry.
	for i := 0; i < 3; i++ {
		if _, err := mp.Slice(info.Start, 8); !errors.Is(err, ErrProtection) {
			t.Fatalf("read %d after raced shootdown: %v, want ErrProtection", i, err)
		}
	}
}

// TestMappingSliceConcurrentFaults runs many readers slicing random ranges
// of a shared mapping while the trusted side repeatedly fires TLB
// shootdowns (MProtectExtent with unchanged rights). Run with -race: the
// soft-TLB bitmaps, the lastRead hit cache, and the fault path must be safe
// for concurrent threads of one process.
func TestMappingSliceConcurrentFaults(t *testing.T) {
	mgr := newMgr(t, 32<<20)
	tfs := NewProcess(1)
	part, err := mgr.CreatePartition(2<<20, 1)
	if err != nil {
		t.Fatal(err)
	}
	info, _ := mgr.Partition(part)
	npages := int(info.Size / scm.PageSize)
	acl := MakeACL(7, RightRead|RightWrite)
	if err := mgr.CreateExtent(tfs, part, info.Start, npages, acl); err != nil {
		t.Fatal(err)
	}
	proc := NewProcess(100, 7)
	mp, err := mgr.Mount(proc, part)
	if err != nil {
		t.Fatal(err)
	}
	// Deterministic content so readers can validate what they slice.
	fill := make([]byte, info.Size)
	for i := range fill {
		fill[i] = byte(i * 7)
	}
	if err := mgr.Mem().Write(info.Start, fill); err != nil {
		t.Fatal(err)
	}

	// Pre-fault every page so the first shootdown finds referenced TLB
	// entries regardless of reader scheduling.
	for p := 0; p < npages; p++ {
		if _, err := mp.Slice(info.Start+uint64(p)*scm.PageSize, 8); err != nil {
			t.Fatal(err)
		}
	}

	var wg sync.WaitGroup
	stop := make(chan struct{})
	errs := make(chan error, 8)
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for {
				select {
				case <-stop:
					return
				default:
				}
				off := uint64(rng.Intn(int(info.Size) - 512))
				n := 1 + rng.Intn(512)
				b, err := mp.Slice(info.Start+off, n)
				if err != nil {
					errs <- err
					return
				}
				if !bytes.Equal(b, fill[off:off+uint64(n)]) {
					errs <- errors.New("sliced bytes differ from written pattern")
					return
				}
			}
		}(int64(r))
	}
	// The shootdown side: protection rewrites with identical rights, so
	// readers never lose access but their TLB entries are invalidated.
	for i := 0; i < 200; i++ {
		page := uint64(i % npages)
		if err := mgr.MProtectExtent(tfs, part, info.Start+page*scm.PageSize, 1, acl); err != nil {
			t.Fatal(err)
		}
	}
	close(stop)
	wg.Wait()
	select {
	case err := <-errs:
		t.Fatal(err)
	default:
	}
	if mgr.Shootdowns.Load() == 0 {
		t.Fatal("expected shootdowns during concurrent slicing")
	}
}
