// Package scmmgr implements the kernel component of Aerie: the SCM manager
// (§5.2). Its responsibilities are exactly those the paper assigns to the
// kernel — allocation of large static partitions, mapping partitions into
// processes, and page-granularity protection via extents — leaving all
// file-system logic to user mode.
//
// Protection model. An extent is a range of pages carrying a 32-bit ACL:
// the 30 high bits are a group identifier (GID), the low 2 bits are the
// memory rights (read, write). ACLs are stored in a three-level radix tree
// in SCM (the paper stores extents in a radix tree corresponding to the
// page-table layout). Each process mapping maintains a "soft TLB": the
// first touch of a page faults, looks up the page's ACL, checks the
// process's group memberships, and caches the decision; changing protection
// invalidates the cached entries of every mapping and charges the paper's
// measured TLB-shootdown cost per referenced page (§7.2.1), letting pages
// fault back in later — the paper's "page table as a giant software TLB".
package scmmgr

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"github.com/aerie-fs/aerie/internal/costmodel"
	"github.com/aerie-fs/aerie/internal/scm"
)

// Rights bits in the low 2 bits of an ACL.
const (
	RightRead  = 1
	RightWrite = 2
)

// ACL packs a 30-bit GID with 2 rights bits, as in the paper (§5.2).
type ACL uint32

// MakeACL builds an ACL from a group ID and rights bits.
func MakeACL(gid uint32, rights uint32) ACL {
	return ACL(gid<<2 | rights&3)
}

// GID returns the group identifier.
func (a ACL) GID() uint32 { return uint32(a) >> 2 }

// Rights returns the rights bits.
func (a ACL) Rights() uint32 { return uint32(a) & 3 }

// Errors returned by the manager and mappings.
var (
	ErrProtection   = errors.New("scmmgr: protection violation")
	ErrNoPartition  = errors.New("scmmgr: no such partition")
	ErrBadMagic     = errors.New("scmmgr: arena not formatted")
	ErrSpace        = errors.New("scmmgr: out of manager space")
	ErrNotOwner     = errors.New("scmmgr: process does not own partition")
	ErrBadPartition = errors.New("scmmgr: bad partition geometry")
)

// On-SCM layout of the manager region at the start of the arena:
//
//	0x00 magic (u64)
//	0x08 bump pointer for radix pages (u64)
//	0x10 manager region size (u64)
//	0x18 partition count (u64)
//	0x40 partition table: maxPartitions slots of partSlotSize bytes
//	...  bump-allocated radix pages
const (
	magicValue    = 0xae81e5c300000001
	offMagic      = 0x00
	offBump       = 0x08
	offRegionSize = 0x10
	offPartCount  = 0x18
	offPartTable  = 0x40
	maxPartitions = 15
	partSlotSize  = 64

	// partition slot fields
	psStart    = 0  // u64 first byte of partition
	psSize     = 8  // u64 bytes
	psOwner    = 16 // u32 owner uid
	psFlags    = 20 // u32 (1 = in use)
	psACLRoot  = 24 // u64 addr of ACL radix root page
	psReserved = 32
)

const (
	radixFanout = 512  // u64 pointers per interior page
	leafACLs    = 1024 // u32 ACLs per leaf page
)

// PartitionID names a partition slot.
type PartitionID uint32

// PartitionInfo describes a partition.
type PartitionInfo struct {
	ID    PartitionID
	Start uint64
	Size  uint64
	Owner uint32
}

// Manager is the kernel SCM manager.
type Manager struct {
	mem   *scm.Memory
	costs *costmodel.Costs

	mu       sync.Mutex
	mappings []*Mapping

	// Stats
	Faults     costmodel.Counter
	Shootdowns costmodel.Counter
}

// Format initializes the manager structures on a raw arena, reserving a
// manager region for the partition table and ACL radix pages. All prior
// contents are logically discarded.
func Format(mem *scm.Memory) error {
	region := mem.Size() / 64
	if region < 64*1024 {
		region = 64 * 1024
	}
	if region > mem.Size()/2 {
		return fmt.Errorf("%w: arena %d too small", ErrBadPartition, mem.Size())
	}
	region = (region + scm.PageSize - 1) / scm.PageSize * scm.PageSize
	if err := scm.Zero(mem, 0, int(offPartTable+maxPartitions*partSlotSize)); err != nil {
		return err
	}
	firstBump := (offPartTable + maxPartitions*partSlotSize + scm.PageSize - 1) / scm.PageSize * scm.PageSize
	if err := scm.Write64(mem, offBump, uint64(firstBump)); err != nil {
		return err
	}
	if err := scm.Write64(mem, offRegionSize, region); err != nil {
		return err
	}
	if err := scm.Write64(mem, offPartCount, 0); err != nil {
		return err
	}
	if err := mem.Flush(0, int(offPartTable+maxPartitions*partSlotSize)); err != nil {
		return err
	}
	mem.Fence()
	return scm.Write64Flush(mem, offMagic, magicValue)
}

// Attach connects a manager to a formatted arena (e.g. after a reboot). The
// partition table is validated against the arena's actual size before any
// partition is trusted: a table that references bytes beyond the arena (a
// truncated or foreign image) is rejected rather than dereferenced.
func Attach(mem *scm.Memory, costs *costmodel.Costs) (*Manager, error) {
	magic, err := scm.Read64(mem, offMagic)
	if err != nil {
		return nil, err
	}
	if magic != magicValue {
		return nil, ErrBadMagic
	}
	m := &Manager{mem: mem, costs: costs}
	region, err := scm.Read64(mem, offRegionSize)
	if err != nil {
		return nil, err
	}
	if region < offPartTable+maxPartitions*partSlotSize || region > mem.Size() {
		return nil, fmt.Errorf("%w: manager region %d in arena of %d", ErrBadPartition, region, mem.Size())
	}
	parts, err := m.Partitions()
	if err != nil {
		return nil, err
	}
	for _, p := range parts {
		if p.Start < region || p.Size == 0 || p.Start+p.Size < p.Start || p.Start+p.Size > mem.Size() {
			return nil, fmt.Errorf("%w: partition %d spans [%#x,+%d) in arena of %d",
				ErrBadPartition, p.ID, p.Start, p.Size, mem.Size())
		}
	}
	return m, nil
}

// FormatAndAttach formats a raw arena and attaches a manager to it.
func FormatAndAttach(mem *scm.Memory, costs *costmodel.Costs) (*Manager, error) {
	if err := Format(mem); err != nil {
		return nil, err
	}
	return Attach(mem, costs)
}

// Mem returns the privileged (unchecked) view of the arena, used only by
// the manager itself and by trusted in-kernel tests.
func (m *Manager) Mem() *scm.Memory { return m.mem }

func (m *Manager) slotAddr(id PartitionID) uint64 {
	return offPartTable + uint64(id)*partSlotSize
}

// allocRadixPage bump-allocates a zeroed page inside the manager region.
func (m *Manager) allocRadixPage() (uint64, error) {
	bump, err := scm.Read64(m.mem, offBump)
	if err != nil {
		return 0, err
	}
	region, err := scm.Read64(m.mem, offRegionSize)
	if err != nil {
		return 0, err
	}
	if bump+scm.PageSize > region {
		return 0, ErrSpace
	}
	if err := scm.Zero(m.mem, bump, scm.PageSize); err != nil {
		return 0, err
	}
	if err := m.mem.Flush(bump, scm.PageSize); err != nil {
		return 0, err
	}
	if err := scm.Write64Flush(m.mem, offBump, bump+scm.PageSize); err != nil {
		return 0, err
	}
	return bump, nil
}

// CreatePartition allocates a contiguous partition of size bytes (rounded up
// to pages) using first-fit after the manager region and existing
// partitions, owned by owner UID. As in the paper, partitions are few and
// large.
func (m *Manager) CreatePartition(size uint64, owner uint32) (PartitionID, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	size = (size + scm.PageSize - 1) / scm.PageSize * scm.PageSize
	if size == 0 {
		return 0, fmt.Errorf("%w: zero size", ErrBadPartition)
	}
	region, err := scm.Read64(m.mem, offRegionSize)
	if err != nil {
		return 0, err
	}
	// First-fit scan over the gaps between existing partitions.
	type seg struct{ start, end uint64 }
	var used []seg
	used = append(used, seg{0, region})
	var freeSlot = PartitionID(maxPartitions)
	for id := PartitionID(0); id < maxPartitions; id++ {
		slot := m.slotAddr(id)
		flags, err := scm.Read32(m.mem, slot+psFlags)
		if err != nil {
			return 0, err
		}
		if flags&1 == 0 {
			if freeSlot == maxPartitions {
				freeSlot = id
			}
			continue
		}
		start, _ := scm.Read64(m.mem, slot+psStart)
		psz, _ := scm.Read64(m.mem, slot+psSize)
		used = append(used, seg{start, start + psz})
	}
	if freeSlot == maxPartitions {
		return 0, fmt.Errorf("%w: partition table full", ErrSpace)
	}
	// Sort used segments (tiny N; insertion sort).
	for i := 1; i < len(used); i++ {
		for j := i; j > 0 && used[j].start < used[j-1].start; j-- {
			used[j], used[j-1] = used[j-1], used[j]
		}
	}
	var start uint64
	found := false
	cursor := uint64(0)
	for _, s := range used {
		if s.start > cursor && s.start-cursor >= size {
			start, found = cursor, true
			break
		}
		if s.end > cursor {
			cursor = s.end
		}
	}
	if !found && m.mem.Size()-cursor >= size {
		start, found = cursor, true
	}
	if !found {
		return 0, fmt.Errorf("%w: no gap of %d bytes", ErrSpace, size)
	}
	aclRoot, err := m.allocRadixPage()
	if err != nil {
		return 0, err
	}
	slot := m.slotAddr(freeSlot)
	if err := scm.Write64(m.mem, slot+psStart, start); err != nil {
		return 0, err
	}
	if err := scm.Write64(m.mem, slot+psSize, size); err != nil {
		return 0, err
	}
	if err := scm.Write32(m.mem, slot+psOwner, owner); err != nil {
		return 0, err
	}
	if err := scm.Write64(m.mem, slot+psACLRoot, aclRoot); err != nil {
		return 0, err
	}
	if err := m.mem.Flush(slot, partSlotSize); err != nil {
		return 0, err
	}
	m.mem.Fence()
	// Publish with an atomic flag write, so a crash mid-create leaves the
	// slot unused.
	if err := scm.Write32(m.mem, slot+psFlags, 1); err != nil {
		return 0, err
	}
	if err := m.mem.Flush(slot+psFlags, 4); err != nil {
		return 0, err
	}
	return freeSlot, nil
}

// Partition returns metadata for a partition.
func (m *Manager) Partition(id PartitionID) (PartitionInfo, error) {
	if id >= maxPartitions {
		return PartitionInfo{}, ErrNoPartition
	}
	slot := m.slotAddr(id)
	flags, err := scm.Read32(m.mem, slot+psFlags)
	if err != nil {
		return PartitionInfo{}, err
	}
	if flags&1 == 0 {
		return PartitionInfo{}, ErrNoPartition
	}
	start, _ := scm.Read64(m.mem, slot+psStart)
	size, _ := scm.Read64(m.mem, slot+psSize)
	owner, _ := scm.Read32(m.mem, slot+psOwner)
	return PartitionInfo{ID: id, Start: start, Size: size, Owner: owner}, nil
}

// Partitions returns metadata for every live partition, in slot order. It is
// how a recovering service rediscovers its partition after reattaching to a
// persistent arena.
func (m *Manager) Partitions() ([]PartitionInfo, error) {
	var out []PartitionInfo
	for id := PartitionID(0); id < maxPartitions; id++ {
		info, err := m.Partition(id)
		if errors.Is(err, ErrNoPartition) {
			continue
		}
		if err != nil {
			return nil, err
		}
		out = append(out, info)
	}
	return out, nil
}

// aclAddr walks (allocating interior pages if create is set) to the address
// of the u32 ACL entry for absolute page number page.
func (m *Manager) aclAddr(id PartitionID, page uint64, create bool) (uint64, error) {
	slot := m.slotAddr(id)
	root, err := scm.Read64(m.mem, slot+psACLRoot)
	if err != nil {
		return 0, err
	}
	// Three levels: root (512) -> mid (512) -> leaf (1024 ACLs).
	idxRoot := page / (radixFanout * leafACLs)
	idxMid := page / leafACLs % radixFanout
	idxLeaf := page % leafACLs
	if idxRoot >= radixFanout {
		return 0, fmt.Errorf("%w: page %d beyond radix coverage", ErrBadPartition, page)
	}
	midPtr := root + idxRoot*8
	mid, err := scm.Read64(m.mem, midPtr)
	if err != nil {
		return 0, err
	}
	if mid == 0 {
		if !create {
			return 0, nil
		}
		mid, err = m.allocRadixPage()
		if err != nil {
			return 0, err
		}
		if err := scm.Write64Flush(m.mem, midPtr, mid); err != nil {
			return 0, err
		}
	}
	leafPtr := mid + idxMid*8
	leaf, err := scm.Read64(m.mem, leafPtr)
	if err != nil {
		return 0, err
	}
	if leaf == 0 {
		if !create {
			return 0, nil
		}
		leaf, err = m.allocRadixPage()
		if err != nil {
			return 0, err
		}
		if err := scm.Write64Flush(m.mem, leafPtr, leaf); err != nil {
			return 0, err
		}
	}
	return leaf + idxLeaf*4, nil
}

// pageACL reads the ACL for absolute page number page (0 if none).
func (m *Manager) pageACL(id PartitionID, page uint64) (ACL, error) {
	addr, err := m.aclAddr(id, page, false)
	if err != nil || addr == 0 {
		return 0, err
	}
	v, err := scm.Read32(m.mem, addr)
	return ACL(v), err
}

// checkInPartition verifies [addr, addr+n) lies inside partition info.
func checkInPartition(info PartitionInfo, addr uint64, n uint64) error {
	if addr < info.Start || addr+n > info.Start+info.Size || addr+n < addr {
		return fmt.Errorf("%w: [%#x,+%d) outside partition [%#x,+%d)",
			ErrProtection, addr, n, info.Start, info.Size)
	}
	return nil
}

// CreateExtent assigns acl to the npages pages starting at the page
// containing addr — the paper's scm_create_extent. Only a process with
// ownership of the partition (the TFS) may call it.
func (m *Manager) CreateExtent(proc *Process, id PartitionID, addr uint64, npages int, acl ACL) error {
	return m.setACL(proc, id, addr, npages, acl, false)
}

// MProtectExtent changes the protection on an existing extent — the paper's
// scm_mprotect_extent. It invalidates the soft-TLB entries of every mapping
// and charges the TLB-shootdown cost for each page that was referenced.
func (m *Manager) MProtectExtent(proc *Process, id PartitionID, addr uint64, npages int, acl ACL) error {
	return m.setACL(proc, id, addr, npages, acl, true)
}

func (m *Manager) setACL(proc *Process, id PartitionID, addr uint64, npages int, acl ACL, shoot bool) error {
	info, err := m.Partition(id)
	if err != nil {
		return err
	}
	if proc != nil && proc.UID != info.Owner {
		return ErrNotOwner
	}
	if err := checkInPartition(info, addr&^uint64(scm.PageSize-1), uint64(npages)*scm.PageSize); err != nil {
		return err
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	firstPage := addr / scm.PageSize
	for i := 0; i < npages; i++ {
		a, err := m.aclAddr(id, firstPage+uint64(i), true)
		if err != nil {
			return err
		}
		if err := scm.Write32(m.mem, a, uint32(acl)); err != nil {
			return err
		}
		if err := m.mem.Flush(a, 4); err != nil {
			return err
		}
	}
	if shoot {
		referenced := 0
		for _, mp := range m.mappings {
			referenced += mp.invalidate(firstPage, npages)
		}
		if referenced > 0 {
			m.Shootdowns.Add(int64(referenced))
			if m.costs != nil {
				costmodel.Spin(time.Duration(referenced) * m.costs.TLBShootdown)
			}
		}
	}
	return nil
}

// Mount maps a partition into a process — the paper's scm_mount_partition.
// The mapping is linear (virtual address == arena address) and the page
// table is populated lazily by faults.
func (m *Manager) Mount(proc *Process, id PartitionID) (*Mapping, error) {
	info, err := m.Partition(id)
	if err != nil {
		return nil, err
	}
	npages := info.Size / scm.PageSize
	mp := &Mapping{
		mgr:       m,
		proc:      proc,
		part:      id,
		start:     info.Start,
		size:      info.Size,
		firstPage: info.Start / scm.PageSize,
		readable:  make([]uint64, (npages+63)/64),
		writable:  make([]uint64, (npages+63)/64),
	}
	m.mu.Lock()
	m.mappings = append(m.mappings, mp)
	m.mu.Unlock()
	return mp, nil
}

// Unmount removes a mapping from the shootdown list.
func (m *Manager) Unmount(mp *Mapping) {
	m.mu.Lock()
	defer m.mu.Unlock()
	for i, x := range m.mappings {
		if x == mp {
			m.mappings = append(m.mappings[:i], m.mappings[i+1:]...)
			return
		}
	}
}
