package scmmgr

import (
	"fmt"
	"sync"
	"sync/atomic"

	"github.com/aerie-fs/aerie/internal/scm"
)

var _ scm.Slicer = (*Mapping)(nil)

// Process models a user process identity: a UID plus the user's group
// memberships, kept in a hash set exactly as the paper's run-time GID table
// (§5.2) so faults can decide access in O(1).
type Process struct {
	UID  uint32
	gids map[uint32]bool
}

// NewProcess creates a process identity with the given UID and groups.
// Every process is implicitly a member of the group equal to its UID.
func NewProcess(uid uint32, gids ...uint32) *Process {
	p := &Process{UID: uid, gids: make(map[uint32]bool, len(gids)+1)}
	p.gids[uid] = true
	for _, g := range gids {
		p.gids[g] = true
	}
	return p
}

// InGroup reports whether the process belongs to gid.
func (p *Process) InGroup(gid uint32) bool { return p.gids[gid] }

// Mapping is a partition mapped into one process. It implements scm.Space
// with hardware-style protection: each access consults a per-page soft TLB;
// misses fault into the manager, which checks the page's extent ACL against
// the process's groups. Mappings are safe for concurrent use by the
// process's threads: the TLB bitmaps are read with atomics and faults
// serialize on a mutex.
type Mapping struct {
	mgr       *Manager
	proc      *Process
	part      PartitionID
	start     uint64
	size      uint64
	firstPage uint64

	faultMu  sync.Mutex
	readable []uint64 // atomic bitmaps indexed by page - firstPage
	writable []uint64

	// lastRead caches the most recent successful read-permission check so a
	// sequential scan consults the TLB bitmap once per page instead of once
	// per access. It packs readEpoch<<32 | rel+1 (zero means empty): a hit
	// counts only when tagged with the current epoch, and invalidate()
	// bumps the epoch, so an entry seeded by a check that raced a shootdown
	// (it loaded the pre-bump epoch) can never be consulted afterwards —
	// clearing alone cannot guarantee that, because the racing reader could
	// store after the clear.
	lastRead  atomic.Uint64
	readEpoch atomic.Uint64
}

func (mp *Mapping) bit(bm []uint64, rel uint64) bool {
	return atomic.LoadUint64(&bm[rel/64])&(1<<(rel%64)) != 0
}

func (mp *Mapping) setBit(bm []uint64, rel uint64) {
	for {
		old := atomic.LoadUint64(&bm[rel/64])
		if atomic.CompareAndSwapUint64(&bm[rel/64], old, old|1<<(rel%64)) {
			return
		}
	}
}

func (mp *Mapping) clearBit(bm []uint64, rel uint64) bool {
	for {
		old := atomic.LoadUint64(&bm[rel/64])
		if old&(1<<(rel%64)) == 0 {
			return false
		}
		if atomic.CompareAndSwapUint64(&bm[rel/64], old, old&^(1<<(rel%64))) {
			return true
		}
	}
}

// fault resolves access to a page not present in the soft TLB, as the
// manager's page-fault handler does (§5.2): compute the entry from the
// linear mapping and the extent tree's permissions.
func (mp *Mapping) fault(rel uint64, write bool) error {
	mp.faultMu.Lock()
	defer mp.faultMu.Unlock()
	// Re-check under the lock: another thread may have faulted it in.
	if write && mp.bit(mp.writable, rel) || !write && mp.bit(mp.readable, rel) {
		return nil
	}
	mp.mgr.Faults.Add(1)
	acl, err := mp.mgr.pageACL(mp.part, mp.firstPage+rel)
	if err != nil {
		return err
	}
	if !mp.proc.InGroup(acl.GID()) {
		return fmt.Errorf("%w: page %d gid %d not in process groups", ErrProtection, mp.firstPage+rel, acl.GID())
	}
	rights := acl.Rights()
	need := uint32(RightRead)
	if write {
		need = RightWrite
	}
	if rights&need == 0 {
		return fmt.Errorf("%w: page %d rights %#b, need %#b", ErrProtection, mp.firstPage+rel, rights, need)
	}
	if rights&RightRead != 0 {
		mp.setBit(mp.readable, rel)
	}
	if rights&RightWrite != 0 {
		mp.setBit(mp.writable, rel)
	}
	return nil
}

// access verifies rights over [addr, addr+n), faulting pages in as needed.
func (mp *Mapping) access(addr uint64, n int, write bool) error {
	if n < 0 || addr < mp.start || addr+uint64(n) > mp.start+mp.size || addr+uint64(n) < addr {
		return fmt.Errorf("%w: [%#x,+%d) outside mapping", ErrProtection, addr, n)
	}
	if n == 0 {
		return nil
	}
	first := (addr - mp.start) / scm.PageSize
	last := (addr + uint64(n) - 1 - mp.start) / scm.PageSize
	var epoch uint64
	if !write {
		// Load the epoch BEFORE consulting the bitmap. The store below is
		// tagged with this value, so if an invalidate() lands anywhere
		// between here and the store, the bumped epoch makes the entry
		// unconsultable — the cache can never outlive a shootdown.
		epoch = mp.readEpoch.Load()
		if first == last && mp.lastRead.Load() == epoch<<32|(first+1) {
			return nil
		}
	}
	bm := mp.readable
	if write {
		bm = mp.writable
	}
	for rel := first; rel <= last; rel++ {
		if !mp.bit(bm, rel) {
			if err := mp.fault(rel, write); err != nil {
				return err
			}
		}
	}
	if !write && last+1 < 1<<32 {
		mp.lastRead.Store(epoch<<32 | (last + 1))
	}
	return nil
}

// invalidate clears soft-TLB entries for npages pages starting at absolute
// page firstPage, returning how many entries were present (referenced), the
// count the manager charges shootdown cost for.
func (mp *Mapping) invalidate(firstPage uint64, npages int) int {
	referenced := 0
	for i := 0; i < npages; i++ {
		page := firstPage + uint64(i)
		if page < mp.firstPage || page >= mp.firstPage+mp.size/scm.PageSize {
			continue
		}
		rel := page - mp.firstPage
		r := mp.clearBit(mp.readable, rel)
		w := mp.clearBit(mp.writable, rel)
		if r || w {
			referenced++
		}
	}
	// Bump the read-cache epoch after dropping the bitmap bits. Hits are
	// honored only when tagged with the current epoch, so any cache entry
	// stored by an access racing this shootdown (it loaded the pre-bump
	// epoch) is dead the moment the bump lands, even if the store happens
	// after this line. An in-flight access may still complete with the old
	// permission — as a real TLB allows until the shootdown IPI is
	// acknowledged — but no access that starts afterwards can.
	mp.readEpoch.Add(1)
	return referenced
}

// Read implements scm.Space with read-permission checks.
func (mp *Mapping) Read(addr uint64, p []byte) error {
	if err := mp.access(addr, len(p), false); err != nil {
		return err
	}
	return mp.mgr.mem.Read(addr, p)
}

// Slice implements scm.Slicer with the same read-permission checks as Read:
// the soft TLB is consulted (or faulted) for every covered page before the
// zero-copy window is handed out. The window aliases the volatile image and
// must not be written through.
func (mp *Mapping) Slice(addr uint64, n int) ([]byte, error) {
	if err := mp.access(addr, n, false); err != nil {
		return nil, err
	}
	return mp.mgr.mem.Slice(addr, n)
}

// Write implements scm.Space with write-permission checks.
func (mp *Mapping) Write(addr uint64, p []byte) error {
	if err := mp.access(addr, len(p), true); err != nil {
		return err
	}
	return mp.mgr.mem.Write(addr, p)
}

// WriteStream implements scm.Space with write-permission checks.
func (mp *Mapping) WriteStream(addr uint64, p []byte) error {
	if err := mp.access(addr, len(p), true); err != nil {
		return err
	}
	return mp.mgr.mem.WriteStream(addr, p)
}

// Flush implements scm.Space. Flushing requires no permission beyond the
// write that dirtied the lines. This call's charged latency is attributed
// to the client side: a mapping is by construction a user-process window,
// so everything flushed through it is library-file-system work, not TFS
// work. The per-call return is used rather than diffing the shared
// scm.charged_ns counter, which would misattribute concurrent flushers.
func (mp *Mapping) Flush(addr uint64, n int) error {
	charged, err := mp.mgr.mem.FlushCharged(addr, n)
	mp.mgr.mem.AddClientChargedNS(charged)
	return err
}

// BFlush implements scm.Space.
func (mp *Mapping) BFlush() {
	mp.mgr.mem.AddClientChargedNS(mp.mgr.mem.BFlushCharged())
}

// Fence implements scm.Space.
func (mp *Mapping) Fence() { mp.mgr.mem.Fence() }

// Atomic64 implements scm.Space with write-permission checks.
func (mp *Mapping) Atomic64(addr uint64, v uint64) error {
	if err := mp.access(addr, 8, true); err != nil {
		return err
	}
	return mp.mgr.mem.Atomic64(addr, v)
}

// Size implements scm.Space: the arena size (the mapping is linear, so
// addresses are arena-absolute; accesses outside the partition still fail
// the permission check).
func (mp *Mapping) Size() uint64 { return mp.mgr.mem.Size() }

// Partition returns the mapped partition's ID.
func (mp *Mapping) Partition() PartitionID { return mp.part }

// Base returns the first address of the mapped partition.
func (mp *Mapping) Base() uint64 { return mp.start }

// Span returns the mapped partition's address range. A sharded client
// session composes one mapping per shard partition and routes accesses by
// these ranges.
func (mp *Mapping) Span() (start, size uint64) { return mp.start, mp.size }

// Proc returns the owning process identity.
func (mp *Mapping) Proc() *Process { return mp.proc }
