package experiments

import (
	"fmt"
	"runtime"
	"runtime/debug"
	"time"

	"github.com/aerie-fs/aerie/internal/core"
	"github.com/aerie-fs/aerie/internal/filebench"
	"github.com/aerie-fs/aerie/internal/libfs"
	"github.com/aerie-fs/aerie/internal/pxfs"
	"github.com/aerie-fs/aerie/internal/scm"
)

// timeDuration keeps scale.go free of a direct time import cycle concern.
type timeDuration = time.Duration

// MProtect reproduces the §7.2.1 permission-change measurement: the cost of
// narrowing memory protection on a file whose pages have been referenced
// (and therefore sit in soft-TLB mappings that must be shot down).
func MProtect(cfg Config) error {
	cfg.defaults()
	pages := 256
	tg, err := newPXFSTarget(cfg.Costs, 64<<20, true)
	if err != nil {
		return err
	}
	pfs := tg.fb.(filebench.PXFSAdapter).FS
	f, err := pfs.Create("/protected", 0644)
	if err != nil {
		return err
	}
	buf := make([]byte, scm.PageSize)
	for i := 0; i < pages; i++ {
		if _, err := f.WriteAt(buf, int64(i)*scm.PageSize); err != nil {
			return err
		}
	}
	if err := f.Close(); err != nil {
		return err
	}
	if err := pfs.Sync(); err != nil {
		return err
	}
	// Reference every page so the shootdown has mapped entries to kill.
	g, err := pfs.Open("/protected", pxfs.O_RDONLY)
	if err != nil {
		return err
	}
	for i := 0; i < pages; i++ {
		if _, err := g.ReadAt(buf, int64(i)*scm.PageSize); err != nil {
			return err
		}
	}
	_ = g.Close()
	shootBefore := tg.sys.Mgr.Shootdowns.Load()
	start := time.Now()
	if err := pfs.Chmod("/protected", 0444, true); err != nil {
		return err
	}
	elapsed := time.Since(start)
	shot := tg.sys.Mgr.Shootdowns.Load() - shootBefore
	perPage := time.Duration(0)
	if shot > 0 {
		perPage = elapsed / time.Duration(shot)
	}
	fmt.Fprintf(cfg.Out, "Permission change (§7.2.1): %d pages, %d referenced pages shot down\n", pages, shot)
	fmt.Fprintf(cfg.Out, "  total %.1fµs, %.2fµs per referenced page (paper: 3.3µs/page)\n\n",
		float64(elapsed.Microseconds()), float64(perPage.Nanoseconds())/1000)
	return nil
}

// BatchSweep reproduces the §7.2.2 batching observation (the paper found an
// 8MB optimum): Fileserver throughput as the metadata batch limit varies,
// including the degenerate ship-every-op setting (the no-batching
// ablation).
func BatchSweep(cfg Config) error {
	cfg.defaults()
	iters := cfg.Iterations
	if iters == 0 {
		iters = 40
	}
	arena, _ := table2Arena(cfg)
	limits := []int{1, 64 << 10, 1 << 20, 8 << 20}
	labels := []string{"per-op (no batching)", "64KB", "1MB", "8MB"}
	p := filebench.Fileserver(cfg.Scale)

	fmt.Fprintf(cfg.Out, "Batch-size sweep (§7.2.2 ablation): Fileserver on PXFS\n\n")
	fmt.Fprintf(cfg.Out, "%-22s%14s%14s\n", "Batch limit", "ops/s", "mean op µs")
	for i, lim := range limits {
		sys, err := core.New(core.Options{ArenaSize: arena, Costs: cfg.Costs, AcquireTimeout: 60 * time.Second})
		if err != nil {
			return err
		}
		sess, err := sys.NewSession(libfs.Config{UID: 1000, BatchLimit: lim})
		if err != nil {
			return err
		}
		fb := filebench.PXFSAdapter{FS: pxfs.New(sess, pxfs.Options{NameCache: true})}
		if err := filebench.Setup(fb, p); err != nil {
			return err
		}
		res, err := filebench.Run(fb, p, filebench.RunOpts{Iterations: iters})
		if err != nil {
			return err
		}
		fmt.Fprintf(cfg.Out, "%-22s%14.0f%14.2f\n", labels[i], res.Throughput,
			float64(res.MeanOpLatency.Nanoseconds())/1000)
		_ = sess.Close()
	}
	fmt.Fprintln(cfg.Out)
	return nil
}

// timeMS keeps scale.go's duration arithmetic terse.
const timeMS = time.Millisecond

// releaseMemory returns freed arenas to the OS between measurement points so
// garbage-collector ballast from one configuration cannot distort the next.
func releaseMemory() {
	runtime.GC()
	debug.FreeOSMemory()
}
