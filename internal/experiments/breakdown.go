package experiments

import (
	"encoding/json"
	"fmt"
	"io"
	"time"

	"github.com/aerie-fs/aerie/internal/core"
	"github.com/aerie-fs/aerie/internal/filebench"
	"github.com/aerie-fs/aerie/internal/flatfs"
	"github.com/aerie-fs/aerie/internal/libfs"
	"github.com/aerie-fs/aerie/internal/obs"
	"github.com/aerie-fs/aerie/internal/pxfs"
)

// Breakdown attributes each FileBench workload's time to exclusive layers,
// in the spirit of the paper's Figure 1 (where does a VFS operation go?)
// turned on Aerie itself: how much of an op is the client library, the RPC
// transport, lock waits, journal commits, TFS work, and charged SCM
// latency. It runs the three Table 2 workloads single-threaded on a machine
// with a live observability sink and derives the split from the per-layer
// metrics, so the rows sum to the measured operation time.
//
// The layers are exclusive (each nanosecond is counted once):
//
//	client  = op total - rpc.call time - client-side SCM charges
//	rpc     = rpc.call - rpc.dispatch (transport + simulated crossings)
//	lock    = lock.wait inside the service
//	journal = journal.commit minus the SCM charges inside commit
//	tfs     = rpc.dispatch - lock - journal - server-side SCM charges
//	scm     = all charged SCM latency (client flushes + server journal/
//	          checkpoint writes)
//
// Lease renewals are pushed out of the window with a long lease, and the
// sink is reset after setup, so the numbers cover only workload operations.
type LayerCost struct {
	Layer string  `json:"layer"`
	NS    int64   `json:"ns"`
	Pct   float64 `json:"pct"`
}

// WorkloadBreakdown is one workload's per-layer split plus the activity
// counters that explain it.
type WorkloadBreakdown struct {
	Workload string `json:"workload"`
	FS       string `json:"fs"`
	Ops      int64  `json:"ops"`
	TotalNS  int64  `json:"total_ns"`
	MeanOpNS int64  `json:"mean_op_ns"`
	// Layers is always the six rows in fixed order: client, rpc, lock,
	// journal, tfs, scm.
	Layers []LayerCost `json:"layers"`
	// Counters is a fixed, ordered selection of activity counters.
	Counters []obs.CounterSnap `json:"counters"`
}

// BreakdownReport is the full -breakdown output. Its JSON encoding is
// deterministic: structs and slices only, no map iteration anywhere.
type BreakdownReport struct {
	Scale      float64             `json:"scale"`
	Iterations int                 `json:"iterations"`
	Workloads  []WorkloadBreakdown `json:"workloads"`
}

// breakdownLayers is the fixed row order of every per-workload table.
var breakdownLayers = []string{"client", "rpc", "lock", "journal", "tfs", "scm"}

// breakdownCounters is the fixed set of activity counters included with
// each workload, in report order.
var breakdownCounters = []string{
	"rpc.calls",
	"rpc.crossings",
	"lock.acquires",
	"lock.contended",
	"lock.clerk.local_hits",
	"lock.clerk.global_calls",
	"journal.records",
	"journal.checkpoints",
	"scm.lines_flushed",
	"scm.fences",
}

// computeLayers derives the exclusive per-layer split from a snapshot.
// total is the operation-histogram sum the split must add up to. Small
// negative residuals (timer granularity, attribution boundaries) are
// clamped to zero with the difference absorbed by the client row, so rows
// never go negative and still sum to total whenever total itself is sane.
func computeLayers(total int64, snap obs.Snapshot) []LayerCost {
	rpcCall := snap.HistSum("rpc.call")
	dispatch := snap.HistSum("rpc.dispatch")
	lockWait := snap.HistSum("lock.wait")
	commit := snap.HistSum("journal.commit")
	commitSCM := snap.Counter("journal.commit.scm_ns")
	scmAll := snap.Counter("scm.charged_ns")
	scmClient := snap.Counter("scm.client.charged_ns")
	scmServer := scmAll - scmClient

	vals := map[string]int64{
		"client":  total - rpcCall - scmClient,
		"rpc":     rpcCall - dispatch,
		"lock":    lockWait,
		"journal": commit - commitSCM,
		"tfs":     dispatch - lockWait - commit - (scmServer - commitSCM),
		"scm":     scmAll,
	}
	// Clamp negatives into the client row (attribution noise), then clamp
	// the client row itself.
	for _, l := range breakdownLayers[1:] {
		if vals[l] < 0 {
			vals["client"] += vals[l]
			vals[l] = 0
		}
	}
	if vals["client"] < 0 {
		vals["client"] = 0
	}
	rows := make([]LayerCost, 0, len(breakdownLayers))
	for _, l := range breakdownLayers {
		pct := 0.0
		if total > 0 {
			pct = 100 * float64(vals[l]) / float64(total)
		}
		rows = append(rows, LayerCost{Layer: l, NS: vals[l], Pct: pct})
	}
	return rows
}

// selectCounters copies the fixed counter set out of a snapshot, keeping
// report order independent of the sink's internal map.
func selectCounters(snap obs.Snapshot) []obs.CounterSnap {
	out := make([]obs.CounterSnap, 0, len(breakdownCounters))
	for _, name := range breakdownCounters {
		out = append(out, obs.CounterSnap{Name: name, Value: snap.Counter(name)})
	}
	return out
}

// breakdownWorkload packages one measured run into a report entry.
func breakdownWorkload(workload, fsName, opHist string, sink *obs.Sink) WorkloadBreakdown {
	snap := sink.Snapshot()
	oph, _ := snap.Histogram(opHist)
	wb := WorkloadBreakdown{
		Workload: workload,
		FS:       fsName,
		Ops:      oph.Count,
		TotalNS:  oph.SumNS,
		MeanOpNS: oph.MeanNS,
		Layers:   computeLayers(oph.SumNS, snap),
		Counters: selectCounters(snap),
	}
	return wb
}

// breakdownSystem boots a machine wired for attribution: a live sink and a
// lease long enough that no renewals land inside the measurement window.
func breakdownSystem(cfg Config, arena uint64) (*core.System, *obs.Sink, error) {
	sink := obs.New()
	sys, err := core.New(core.Options{
		ArenaSize:      arena,
		Costs:          cfg.Costs,
		Lease:          10 * time.Minute,
		AcquireTimeout: 60 * time.Second,
		Obs:            sink,
	})
	if err != nil {
		return nil, nil, err
	}
	return sys, sink, nil
}

// RunBreakdown measures the three FileBench workloads and returns the
// per-layer report: fileserver and webserver on PXFS, webproxy on FlatFS
// (its flat single-directory namespace is FlatFS's home turf).
func RunBreakdown(cfg Config) (*BreakdownReport, error) {
	cfg.defaults()
	iters := cfg.Iterations
	if iters == 0 {
		iters = 60
	}
	arena, _ := table2Arena(cfg)
	report := &BreakdownReport{Scale: cfg.Scale, Iterations: iters}

	pxProfiles := []filebench.Profile{
		filebench.Fileserver(cfg.Scale),
		filebench.Webserver(cfg.Scale),
	}
	for _, p := range pxProfiles {
		sys, sink, err := breakdownSystem(cfg, arena)
		if err != nil {
			return nil, err
		}
		sess, err := sys.NewSession(libfs.Config{UID: 1000, BatchLimit: 256 << 10})
		if err != nil {
			return nil, err
		}
		fs := pxfs.New(sess, pxfs.Options{NameCache: true})
		fb := filebench.PXFSAdapter{FS: fs}
		if err := filebench.Setup(fb, p); err != nil {
			return nil, fmt.Errorf("%s setup: %w", p.Name, err)
		}
		// Drop setup-phase noise; everything after this is workload.
		sink.Reset()
		if _, err := filebench.Run(fb, p, filebench.RunOpts{Threads: 1, Iterations: iters}); err != nil {
			return nil, fmt.Errorf("%s: %w", p.Name, err)
		}
		report.Workloads = append(report.Workloads, breakdownWorkload(p.Name, "PXFS", "pxfs.op", sink))
	}

	wp := filebench.Webproxy(cfg.Scale * 2)
	sys, sink, err := breakdownSystem(cfg, arena)
	if err != nil {
		return nil, err
	}
	sess, err := sys.NewSession(libfs.Config{UID: 1000, BatchLimit: 256 << 10})
	if err != nil {
		return nil, err
	}
	kv := filebench.FlatKV{FS: flatfs.New(sess, flatfs.Options{})}
	if err := filebench.SetupKV(kv, wp); err != nil {
		return nil, fmt.Errorf("%s setup: %w", wp.Name, err)
	}
	sink.Reset()
	if _, err := filebench.RunKV(kv, wp, filebench.RunOpts{Threads: 1, Iterations: iters}); err != nil {
		return nil, fmt.Errorf("%s: %w", wp.Name, err)
	}
	report.Workloads = append(report.Workloads, breakdownWorkload(wp.Name, "FlatFS", "flatfs.op", sink))
	return report, nil
}

// WriteText renders the report as aligned tables, one per workload.
func (r *BreakdownReport) WriteText(w io.Writer) error {
	fmt.Fprintf(w, "Per-layer latency breakdown (scale %.2f, %d iterations, single thread)\n",
		r.Scale, r.Iterations)
	fmt.Fprintf(w, "Each row is exclusive time; rows sum to the measured op total.\n")
	for _, wb := range r.Workloads {
		fmt.Fprintf(w, "\n%s on %s: %d ops, mean %s/op\n",
			wb.Workload, wb.FS, wb.Ops, obs.FormatNS(wb.MeanOpNS))
		fmt.Fprintf(w, "  %-8s %14s %14s %7s\n", "layer", "total", "per-op", "share")
		for _, lc := range wb.Layers {
			perOp := int64(0)
			if wb.Ops > 0 {
				perOp = lc.NS / wb.Ops
			}
			fmt.Fprintf(w, "  %-8s %14s %14s %6.1f%%\n",
				lc.Layer, obs.FormatNS(lc.NS), obs.FormatNS(perOp), lc.Pct)
		}
		fmt.Fprintf(w, "  activity:")
		for i, c := range wb.Counters {
			if i > 0 && i%3 == 0 {
				fmt.Fprintf(w, "\n           ")
			}
			fmt.Fprintf(w, " %s=%d", c.Name, c.Value)
		}
		fmt.Fprintln(w)
	}
	return nil
}

// WriteJSON renders the report as deterministic indented JSON.
func (r *BreakdownReport) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// Breakdown runs the measurement and prints the text tables (cmd/aerie-bench
// -breakdown; pass -json for the machine-readable form).
func Breakdown(cfg Config) error {
	cfg.defaults()
	rep, err := RunBreakdown(cfg)
	if err != nil {
		return err
	}
	return rep.WriteText(cfg.Out)
}

// BreakdownJSON runs the measurement and prints JSON only.
func BreakdownJSON(cfg Config) error {
	cfg.defaults()
	rep, err := RunBreakdown(cfg)
	if err != nil {
		return err
	}
	return rep.WriteJSON(cfg.Out)
}
