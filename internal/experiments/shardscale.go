package experiments

import (
	"fmt"

	"github.com/aerie-fs/aerie/internal/costmodel"
	"github.com/aerie-fs/aerie/internal/filebench"
	"github.com/aerie-fs/aerie/internal/scalesim"
)

// ShardScale is the sharded trusted set's Table 3 / Figure 5 analogue:
// aggregate throughput of 64–1024 simulated Fileserver client processes
// (each in its own directory, so only the trusted service is shared)
// against {1, 2, 4, 8} TFS shards. In the simulator a thread's "tfs"
// phases route to its home shard's service point — the analogue of
// namespace placement spreading client working directories — and every
// shard carries its own TFSThreads-deep capacity, just as each real shard
// runs its own journal, allocator, and group-commit leader. The classic
// single service saturates once ~TFSThreads clients keep it busy; adding
// shards moves that knee right and the multiprogrammed throughput ceiling
// up roughly with the shard count once the service is the bottleneck.
func ShardScale(cfg Config) error {
	cfg.defaults()
	iters := cfg.Iterations
	if iters == 0 {
		iters = 40
	}
	arena, _ := table2Arena(cfg)
	clientCounts := []int{64, 128, 256, 512, 1024}
	shardCounts := []int{1, 2, 4, 8}

	px, err := newPXFSTarget(cfg.Costs, arena, true)
	if err != nil {
		return err
	}
	fsTrace, err := captureTrace(px, filebench.Fileserver(cfg.Scale), iters)
	if err != nil {
		return err
	}

	fmt.Fprintf(cfg.Out, "Shard scaling: multiprogrammed Fileserver throughput (ops/s) vs clients, from measured phase traces\n\n")
	fmt.Fprintf(cfg.Out, "%-10s", "shards")
	for _, n := range clientCounts {
		fmt.Fprintf(cfg.Out, "%12d", n)
	}
	fmt.Fprintln(cfg.Out)
	for _, shards := range shardCounts {
		fmt.Fprintf(cfg.Out, "%-10d", shards)
		for _, n := range clientCounts {
			r := ShardScalePoint(fsTrace, n, shards)
			fmt.Fprintf(cfg.Out, "%12.0f", r.Throughput)
		}
		fmt.Fprintln(cfg.Out)
	}
	fmt.Fprintln(cfg.Out)
	return nil
}

// ShardScalePoint simulates one (clients, shards) cell: n client processes
// replaying the trace with private lock resources and a shards-way
// partitioned trusted service. Exposed for the bench harness
// (bench_shard_test.go), which asserts the scaling shape on the same cells
// the table prints.
func ShardScalePoint(trace []costmodel.OpTrace, clients, shards int) scalesim.Result {
	traces := make([][]costmodel.OpTrace, 0, clients)
	for c := 0; c < clients; c++ {
		traces = append(traces, namespaceTrace(trace, c))
	}
	return scalesim.SimulateTraces(traces, scalesim.Config{
		Duration:   100 * timeMS,
		TFSThreads: 6,
		Shards:     shards,
	})
}
