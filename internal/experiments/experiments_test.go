package experiments

import (
	"bytes"
	"strings"
	"testing"

	"github.com/aerie-fs/aerie/internal/costmodel"
)

// tinyCfg keeps the full experiment pipeline fast enough for the unit
// suite while still exercising every code path.
func tinyCfg(out *bytes.Buffer) Config {
	return Config{
		Scale:      0.01,
		Iterations: 3,
		Costs:      costmodel.Costs{}, // no injected delays in tests
		Out:        out,
	}
}

func TestTable1Runs(t *testing.T) {
	var out bytes.Buffer
	cfg := tinyCfg(&out)
	if err := Table1(cfg); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	for _, want := range []string{"Sequential read", "Create", "PXFS", "RamFS", "ext3", "ext4"} {
		if !strings.Contains(s, want) {
			t.Fatalf("missing %q in:\n%s", want, s)
		}
	}
}

func TestTable2Runs(t *testing.T) {
	var out bytes.Buffer
	if err := Table2(tinyCfg(&out)); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	for _, want := range []string{"fileserver", "webserver", "webproxy", "PXFS-NNC"} {
		if !strings.Contains(s, want) {
			t.Fatalf("missing %q in:\n%s", want, s)
		}
	}
}

func TestFigure1Runs(t *testing.T) {
	var out bytes.Buffer
	if err := Figure1(tinyCfg(&out)); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	for _, want := range []string{"stat", "rename", "Naming", "MemoryObjects", "Synchronization"} {
		if !strings.Contains(s, want) {
			t.Fatalf("missing %q in:\n%s", want, s)
		}
	}
}

func TestFigure5Runs(t *testing.T) {
	var out bytes.Buffer
	if err := Figure5(tinyCfg(&out)); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	for _, want := range []string{"FlatFS", "threads", "webproxy"} {
		if !strings.Contains(s, want) {
			t.Fatalf("missing %q in:\n%s", want, s)
		}
	}
}

func TestTable3Runs(t *testing.T) {
	var out bytes.Buffer
	if err := Table3(tinyCfg(&out)); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "FS+WP (FlatFS)") {
		t.Fatalf("missing mixes in:\n%s", out.String())
	}
}

func TestFigure6Runs(t *testing.T) {
	var out bytes.Buffer
	cfg := tinyCfg(&out)
	if err := Figure6(cfg); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "Webproxy-FlatFS") {
		t.Fatalf("missing series in:\n%s", out.String())
	}
}

func TestMProtectRuns(t *testing.T) {
	var out bytes.Buffer
	if err := MProtect(tinyCfg(&out)); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "per referenced page") {
		t.Fatalf("unexpected output:\n%s", out.String())
	}
}

func TestBatchSweepRuns(t *testing.T) {
	var out bytes.Buffer
	if err := BatchSweep(tinyCfg(&out)); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "no batching") {
		t.Fatalf("unexpected output:\n%s", out.String())
	}
}
