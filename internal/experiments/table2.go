package experiments

import (
	"fmt"
	"time"

	"github.com/aerie-fs/aerie/internal/filebench"
)

// workloadSet builds the three FileBench profiles at the configured scale.
func workloadSet(cfg Config) []filebench.Profile {
	return []filebench.Profile{
		filebench.Fileserver(cfg.Scale),
		filebench.Webserver(cfg.Scale),
		filebench.Webproxy(cfg.Scale * 2), // paper uses 1k files vs 10k
	}
}

func table2Arena(cfg Config) (uint64, uint64) {
	// Fileserver at scale s: ~10000*s files * ~160KB mean occupancy.
	arena := uint64(float64(10000*160*1024) * cfg.Scale * 4)
	if arena < 256<<20 {
		arena = 256 << 20
	}
	return arena, arena / 4096
}

// Table2 reproduces the §7.2.2 application workloads: average (and 95th
// percentile) latency per workload operation for Fileserver, Webserver, and
// Webproxy on PXFS, PXFS with no name cache, RamFS, ext3, and ext4.
func Table2(cfg Config) error {
	cfg.defaults()
	iters := cfg.Iterations
	if iters == 0 {
		iters = 60
	}
	arena, diskBlocks := table2Arena(cfg)
	profiles := workloadSet(cfg)

	type cell struct{ mean, p95 time.Duration }
	results := map[string]map[string]cell{}
	var names []string

	for _, p := range profiles {
		results[p.Name] = map[string]cell{}
	}
	targets, err := fsTargets(cfg, arena, diskBlocks, true)
	if err != nil {
		return err
	}
	for _, tg := range targets {
		names = append(names, tg.name)
		for _, p := range profiles {
			if err := filebench.Setup(tg.fb, p); err != nil {
				return fmt.Errorf("%s/%s setup: %w", tg.name, p.Name, err)
			}
			res, err := filebench.Run(tg.fb, p, filebench.RunOpts{Iterations: iters})
			if err != nil {
				return fmt.Errorf("%s/%s: %w", tg.name, p.Name, err)
			}
			results[p.Name][tg.name] = cell{res.MeanOpLatency, res.P95OpLatency}
		}
	}

	fmt.Fprintf(cfg.Out, "Table 2: average latency per workload operation, µs (95th percentile in parens)\n")
	fmt.Fprintf(cfg.Out, "(scale %.2f: fileserver/webserver %d files, webproxy %d files)\n\n",
		cfg.Scale, profiles[0].NFiles, profiles[2].NFiles)
	fmt.Fprintf(cfg.Out, "%-12s", "Workload")
	for _, n := range names {
		fmt.Fprintf(cfg.Out, "%20s", n)
	}
	fmt.Fprintln(cfg.Out)
	for _, p := range profiles {
		fmt.Fprintf(cfg.Out, "%-12s", p.Name)
		for _, n := range names {
			c := results[p.Name][n]
			fmt.Fprintf(cfg.Out, "%12.1f (%5.1f)",
				float64(c.mean.Nanoseconds())/1000, float64(c.p95.Nanoseconds())/1000)
		}
		fmt.Fprintln(cfg.Out)
	}
	fmt.Fprintln(cfg.Out)
	return nil
}
