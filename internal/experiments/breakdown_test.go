package experiments

import (
	"bytes"
	"flag"
	"io"
	"os"
	"path/filepath"
	"testing"

	"github.com/aerie-fs/aerie/internal/obs"
)

var updateGolden = flag.Bool("update-golden", false, "rewrite golden files")

// syntheticReport builds a fixed report so the golden test pins the JSON
// shape (field names, ordering, indentation) without depending on measured
// latencies, which vary run to run.
func syntheticReport() *BreakdownReport {
	snap := obs.Snapshot{
		Counters: []obs.CounterSnap{
			{Name: "journal.commit.scm_ns", Value: 2_000},
			{Name: "lock.acquires", Value: 12},
			{Name: "rpc.calls", Value: 7},
			{Name: "scm.charged_ns", Value: 30_000},
			{Name: "scm.client.charged_ns", Value: 20_000},
			{Name: "scm.fences", Value: 40},
			{Name: "scm.lines_flushed", Value: 333},
		},
		Histograms: []obs.HistogramSnap{
			{Name: "journal.commit", SumNS: 9_000, Count: 3},
			{Name: "lock.wait", SumNS: 5_000, Count: 12},
			{Name: "rpc.call", SumNS: 70_000, Count: 7},
			{Name: "rpc.dispatch", SumNS: 50_000, Count: 7},
		},
	}
	const total = int64(200_000)
	return &BreakdownReport{
		Scale:      0.05,
		Iterations: 60,
		Workloads: []WorkloadBreakdown{{
			Workload: "fileserver",
			FS:       "PXFS",
			Ops:      100,
			TotalNS:  total,
			MeanOpNS: total / 100,
			Layers:   computeLayers(total, snap),
			Counters: selectCounters(snap),
		}},
	}
}

// TestBreakdownGolden locks the -json output format: structs and fixed-order
// slices only, so the encoding is byte-for-byte reproducible.
func TestBreakdownGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := syntheticReport().WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("testdata", "breakdown_golden.json")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, buf.Bytes(), 0644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("read golden (run with -update-golden to regenerate): %v", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("JSON output drifted from golden file.\ngot:\n%s\nwant:\n%s", buf.Bytes(), want)
	}
}

// TestBreakdownDeterministicEncoding encodes the same report twice and a
// second, structurally identical copy, and demands identical bytes: no map
// iteration order can leak into the output.
func TestBreakdownDeterministicEncoding(t *testing.T) {
	var a, b bytes.Buffer
	if err := syntheticReport().WriteJSON(&a); err != nil {
		t.Fatal(err)
	}
	if err := syntheticReport().WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Error("two encodings of identical reports differ")
	}
}

// TestComputeLayersInvariants checks the attribution identity on synthetic
// numbers: six rows in fixed order, none negative, summing to the op total.
func TestComputeLayersInvariants(t *testing.T) {
	snap := obs.Snapshot{
		Counters: []obs.CounterSnap{
			{Name: "journal.commit.scm_ns", Value: 2_000},
			{Name: "scm.charged_ns", Value: 30_000},
			{Name: "scm.client.charged_ns", Value: 20_000},
		},
		Histograms: []obs.HistogramSnap{
			{Name: "journal.commit", SumNS: 9_000},
			{Name: "lock.wait", SumNS: 5_000},
			{Name: "rpc.call", SumNS: 70_000},
			{Name: "rpc.dispatch", SumNS: 50_000},
		},
	}
	const total = int64(200_000)
	rows := computeLayers(total, snap)
	if len(rows) != len(breakdownLayers) {
		t.Fatalf("got %d rows, want %d", len(rows), len(breakdownLayers))
	}
	var sum int64
	for i, lc := range rows {
		if lc.Layer != breakdownLayers[i] {
			t.Errorf("row %d is %q, want %q", i, lc.Layer, breakdownLayers[i])
		}
		if lc.NS < 0 {
			t.Errorf("layer %s negative: %d", lc.Layer, lc.NS)
		}
		sum += lc.NS
	}
	if sum != total {
		t.Errorf("rows sum to %d, want %d", sum, total)
	}
	// Spot-check the identity on these inputs (no clamping triggers):
	// client = 200k - 70k - 20k, rpc = 70k - 50k, journal = 9k - 2k,
	// tfs = 50k - 5k - 9k - (10k - 2k), scm = 30k.
	want := map[string]int64{
		"client": 110_000, "rpc": 20_000, "lock": 5_000,
		"journal": 7_000, "tfs": 28_000, "scm": 30_000,
	}
	for _, lc := range rows {
		if lc.NS != want[lc.Layer] {
			t.Errorf("layer %s = %d, want %d", lc.Layer, lc.NS, want[lc.Layer])
		}
	}
}

// TestComputeLayersClampsNegatives feeds inconsistent inputs (dispatch sum
// exceeding everything) and checks the clamp: no negative rows, total
// preserved when the client row can absorb the residual.
func TestComputeLayersClampsNegatives(t *testing.T) {
	snap := obs.Snapshot{
		Histograms: []obs.HistogramSnap{
			{Name: "rpc.call", SumNS: 10_000},
			{Name: "rpc.dispatch", SumNS: 40_000}, // > rpc.call: rpc row would be negative
		},
	}
	rows := computeLayers(100_000, snap)
	var sum int64
	for _, lc := range rows {
		if lc.NS < 0 {
			t.Errorf("layer %s negative after clamp: %d", lc.Layer, lc.NS)
		}
		sum += lc.NS
	}
	if sum != 100_000 {
		t.Errorf("rows sum to %d, want 100000", sum)
	}
}

// TestRunBreakdownLive does a tiny real run and checks structural
// invariants (exact latencies vary): three workloads in fixed order, ops
// counted, rows non-negative and summing to the total.
func TestRunBreakdownLive(t *testing.T) {
	rep, err := RunBreakdown(Config{Scale: 0.02, Iterations: 5, Out: io.Discard})
	if err != nil {
		t.Fatal(err)
	}
	wantOrder := []struct{ workload, fs string }{
		{"fileserver", "PXFS"}, {"webserver", "PXFS"}, {"webproxy", "FlatFS"},
	}
	if len(rep.Workloads) != len(wantOrder) {
		t.Fatalf("got %d workloads, want %d", len(rep.Workloads), len(wantOrder))
	}
	for i, wb := range rep.Workloads {
		if wb.Workload != wantOrder[i].workload || wb.FS != wantOrder[i].fs {
			t.Errorf("workload %d is %s/%s, want %s/%s",
				i, wb.Workload, wb.FS, wantOrder[i].workload, wantOrder[i].fs)
		}
		if wb.Ops <= 0 {
			t.Errorf("%s: no ops recorded", wb.Workload)
		}
		if wb.TotalNS <= 0 {
			t.Errorf("%s: zero total", wb.Workload)
		}
		var sum int64
		for _, lc := range wb.Layers {
			if lc.NS < 0 {
				t.Errorf("%s/%s negative: %d", wb.Workload, lc.Layer, lc.NS)
			}
			sum += lc.NS
		}
		if sum != wb.TotalNS {
			t.Errorf("%s: layers sum to %d, want total %d", wb.Workload, sum, wb.TotalNS)
		}
		if len(wb.Counters) != len(breakdownCounters) {
			t.Errorf("%s: %d counters, want %d", wb.Workload, len(wb.Counters), len(breakdownCounters))
		}
		// The workload must actually have exercised the stack.
		var lines int64
		for _, c := range wb.Counters {
			if c.Name == "scm.lines_flushed" {
				lines = c.Value
			}
		}
		if lines == 0 {
			t.Errorf("%s: no SCM lines flushed during run", wb.Workload)
		}
	}
	// Text rendering must not fail on a live report.
	var buf bytes.Buffer
	if err := rep.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	if buf.Len() == 0 {
		t.Error("empty text report")
	}
}
