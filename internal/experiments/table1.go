package experiments

import (
	"fmt"
	"math/rand"
	"time"
)

// Table1 reproduces the §7.2.1 microbenchmarks: latency of sequential and
// random 4 KB reads/writes on a large file, and open/create/delete/append
// over 1024 small files, on PXFS vs RamFS vs ext3 vs ext4. Sizes scale with
// cfg.Scale (the paper uses a 1 GB file and 1024 files).
func Table1(cfg Config) error {
	cfg.defaults()
	fileMB := int(1024 * cfg.Scale)
	if fileMB < 4 {
		fileMB = 4
	}
	nSmall := int(1024 * cfg.Scale * 4)
	if nSmall < 64 {
		nSmall = 64
	}
	arena := uint64(fileMB)*(1<<20)*4 + 64<<20
	diskBlocks := arena / 4096

	rows := []string{
		"Sequential read", "Sequential write", "Random read", "Random write",
		"Open", "Create", "Delete", "Append",
	}
	results := map[string]map[string]time.Duration{}
	for _, r := range rows {
		results[r] = map[string]time.Duration{}
	}

	targets, err := fsTargets(cfg, arena, diskBlocks, false)
	if err != nil {
		return err
	}
	var names []string
	for _, tg := range targets {
		names = append(names, tg.name)
		if err := runMicro(tg, fileMB, nSmall, results); err != nil {
			return fmt.Errorf("%s: %w", tg.name, err)
		}
	}

	fmt.Fprintf(cfg.Out, "Table 1: latency of common file system operations (µs)\n")
	fmt.Fprintf(cfg.Out, "(paper: 1GB file / 1024 files; this run: %dMB file / %d files, scale %.2f)\n\n",
		fileMB, nSmall, cfg.Scale)
	fmt.Fprintf(cfg.Out, "%-18s", "Benchmark")
	for _, n := range names {
		fmt.Fprintf(cfg.Out, "%12s", n)
	}
	fmt.Fprintln(cfg.Out)
	for _, r := range rows {
		fmt.Fprintf(cfg.Out, "%-18s", r)
		for _, n := range names {
			fmt.Fprintf(cfg.Out, "%12.2f", float64(results[r][n].Nanoseconds())/1000)
		}
		fmt.Fprintln(cfg.Out)
	}
	fmt.Fprintln(cfg.Out)
	return nil
}

// runMicro measures all Table 1 rows on one target.
func runMicro(tg *target, fileMB, nSmall int, results map[string]map[string]time.Duration) error {
	m := tg.micro
	if err := m.Mkdir("/micro"); err != nil {
		return err
	}
	buf := make([]byte, 4096)
	for i := range buf {
		buf[i] = byte(i)
	}
	fileSize := int64(fileMB) << 20

	// Build the large file once.
	f, err := m.Create("/micro/big")
	if err != nil {
		return err
	}
	for off := int64(0); off < fileSize; off += 4096 {
		if _, err := f.WriteAt(buf, off); err != nil {
			return err
		}
	}
	if err := f.Close(); err != nil {
		return err
	}
	if err := m.Sync(); err != nil {
		return err
	}

	nblocks := fileSize / 4096
	measure := func(row string, n int, fn func(i int) error) error {
		start := time.Now()
		for i := 0; i < n; i++ {
			if err := fn(i); err != nil {
				return fmt.Errorf("%s: %w", row, err)
			}
		}
		results[row][tg.name] = time.Since(start) / time.Duration(n)
		return nil
	}

	// Sequential read / write.
	f, err = m.OpenRW("/micro/big")
	if err != nil {
		return err
	}
	if err := measure("Sequential read", int(nblocks), func(i int) error {
		_, err := f.ReadAt(buf, int64(i)*4096)
		return err
	}); err != nil {
		return err
	}
	if err := measure("Sequential write", int(nblocks), func(i int) error {
		_, err := f.WriteAt(buf, int64(i)*4096)
		return err
	}); err != nil {
		return err
	}
	// Random read / write over the first 10% of the file (the paper uses
	// 100MB of 1GB).
	window := nblocks / 10
	if window < 16 {
		window = 16
	}
	rng := rand.New(rand.NewSource(1))
	offs := make([]int64, 4096)
	for i := range offs {
		offs[i] = rng.Int63n(window) * 4096
	}
	if err := measure("Random read", len(offs), func(i int) error {
		_, err := f.ReadAt(buf, offs[i])
		return err
	}); err != nil {
		return err
	}
	if err := measure("Random write", len(offs), func(i int) error {
		_, err := f.WriteAt(buf, offs[i])
		return err
	}); err != nil {
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}

	// Small-file namespace operations over nSmall 4KB files.
	name := func(i int) string { return fmt.Sprintf("/micro/s%05d", i) }
	if err := measure("Create", nSmall, func(i int) error {
		g, err := m.Create(name(i))
		if err != nil {
			return err
		}
		if _, err := g.WriteAt(buf, 0); err != nil {
			return err
		}
		return g.Close()
	}); err != nil {
		return err
	}
	if err := m.Sync(); err != nil {
		return err
	}
	if err := measure("Open", nSmall, func(i int) error {
		g, err := m.OpenRO(name(i))
		if err != nil {
			return err
		}
		return g.Close()
	}); err != nil {
		return err
	}
	if err := measure("Append", nSmall, func(i int) error {
		g, err := m.OpenRW(name(i))
		if err != nil {
			return err
		}
		if _, err := g.WriteAt(buf, 4096); err != nil {
			return err
		}
		return g.Close()
	}); err != nil {
		return err
	}
	if err := measure("Delete", nSmall, func(i int) error {
		return m.Delete(name(i))
	}); err != nil {
		return err
	}
	return m.Sync()
}
