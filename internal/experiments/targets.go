// Package experiments regenerates every table and figure in the paper's
// evaluation (§7): Table 1 (microbenchmark latencies), Table 2 (FileBench
// latencies), Table 3 (multiprogrammed throughput), Figure 1 (VFS time
// breakdown), Figure 5 (thread scaling), Figure 6 (write-latency
// sensitivity), plus the §7.2.1 permission-change measurement and the
// §7.2.2 batch-size sweep. cmd/aerie-bench prints them; bench_test.go wraps
// them as Go benchmarks. EXPERIMENTS.md records paper-vs-measured.
package experiments

import (
	"fmt"
	"io"
	"time"

	"github.com/aerie-fs/aerie/internal/blockdev"
	"github.com/aerie-fs/aerie/internal/core"
	"github.com/aerie-fs/aerie/internal/costmodel"
	"github.com/aerie-fs/aerie/internal/extfs"
	"github.com/aerie-fs/aerie/internal/filebench"
	"github.com/aerie-fs/aerie/internal/flatfs"
	"github.com/aerie-fs/aerie/internal/libfs"
	"github.com/aerie-fs/aerie/internal/pxfs"
	"github.com/aerie-fs/aerie/internal/ramfs"
	"github.com/aerie-fs/aerie/internal/vfs"
)

// Config tunes the harness.
type Config struct {
	// Scale shrinks the paper's working sets (1.0 = full size; default
	// 0.05 keeps runs laptop-fast).
	Scale float64
	// Iterations per measurement loop (default picked per experiment).
	Iterations int
	// Costs calibrates injected latencies (default costmodel.DefaultCosts).
	Costs costmodel.Costs
	// Out receives the formatted report (required).
	Out io.Writer
}

func (c *Config) defaults() {
	if c.Scale <= 0 {
		c.Scale = 0.05
	}
	zero := costmodel.Costs{}
	if c.Costs == zero {
		c.Costs = costmodel.DefaultCosts()
	}
}

// target bundles one file system under test.
type target struct {
	name  string
	fb    filebench.FS
	micro microFS
	// tracer is non-nil for targets that record contention phases (the
	// Aerie library file systems).
	tracer *costmodel.Tracer
	// kv is non-nil for FlatFS.
	kv filebench.KV
	// costs is the live cost table (shared with the arena for sweeps).
	costs *costmodel.Costs
	// vfs is non-nil for kernel targets (cache control, accounting).
	vfs *vfs.VFS
	// sessFactory opens another client process on the same machine
	// (PXFS only; used by the scaling experiments).
	sys *core.System
}

// microFS is the minimal surface the Table 1 microbenchmarks need.
type microFS interface {
	Create(path string) (microFile, error)
	OpenRO(path string) (microFile, error)
	OpenRW(path string) (microFile, error)
	Delete(path string) error
	Mkdir(path string) error
	Stat(path string) error
	Sync() error
}

type microFile interface {
	ReadAt(p []byte, off int64) (int, error)
	WriteAt(p []byte, off int64) (int, error)
	Close() error
}

// ---- PXFS target ----

type pxfsMicro struct{ fs *pxfs.FS }

type pxfsMicroFile struct{ f *pxfs.File }

func (m pxfsMicroFile) ReadAt(p []byte, off int64) (int, error) {
	n, err := m.f.ReadAt(p, off)
	if err != nil && n == len(p) {
		err = nil
	}
	return n, err
}
func (m pxfsMicroFile) WriteAt(p []byte, off int64) (int, error) { return m.f.WriteAt(p, off) }
func (m pxfsMicroFile) Close() error                             { return m.f.Close() }

func (m pxfsMicro) Create(path string) (microFile, error) {
	f, err := m.fs.Create(path, 0644)
	if err != nil {
		return nil, err
	}
	return pxfsMicroFile{f}, nil
}
func (m pxfsMicro) OpenRO(path string) (microFile, error) {
	f, err := m.fs.Open(path, pxfs.O_RDONLY)
	if err != nil {
		return nil, err
	}
	return pxfsMicroFile{f}, nil
}
func (m pxfsMicro) OpenRW(path string) (microFile, error) {
	f, err := m.fs.OpenFile(path, pxfs.O_RDWR, 0644)
	if err != nil {
		return nil, err
	}
	return pxfsMicroFile{f}, nil
}
func (m pxfsMicro) Delete(path string) error { return m.fs.Unlink(path) }
func (m pxfsMicro) Mkdir(path string) error  { return m.fs.Mkdir(path, 0755) }
func (m pxfsMicro) Stat(path string) error {
	_, err := m.fs.Stat(path)
	return err
}
func (m pxfsMicro) Sync() error { return m.fs.Sync() }

// ---- VFS target ----

type vfsMicro struct{ v *vfs.VFS }

type vfsMicroFile struct {
	v  *vfs.VFS
	fd int
}

func (m vfsMicroFile) ReadAt(p []byte, off int64) (int, error) {
	return m.v.Pread(m.fd, p, uint64(off))
}
func (m vfsMicroFile) WriteAt(p []byte, off int64) (int, error) {
	return m.v.Pwrite(m.fd, p, uint64(off))
}
func (m vfsMicroFile) Close() error { return m.v.Close(m.fd) }

func (m vfsMicro) open(path string, flags int, mode uint32) (microFile, error) {
	fd, err := m.v.Open(path, flags, mode)
	if err != nil {
		return nil, err
	}
	return vfsMicroFile{m.v, fd}, nil
}
func (m vfsMicro) Create(path string) (microFile, error) {
	return m.open(path, vfs.O_RDWR|vfs.O_CREATE|vfs.O_TRUNC, 0644)
}
func (m vfsMicro) OpenRO(path string) (microFile, error) { return m.open(path, vfs.O_RDONLY, 0) }
func (m vfsMicro) OpenRW(path string) (microFile, error) { return m.open(path, vfs.O_RDWR, 0) }
func (m vfsMicro) Delete(path string) error              { return m.v.Unlink(path) }
func (m vfsMicro) Mkdir(path string) error               { return m.v.Mkdir(path, 0755) }
func (m vfsMicro) Stat(path string) error {
	_, err := m.v.Stat(path)
	return err
}
func (m vfsMicro) Sync() error { return m.v.Sync() }

// newPXFSTarget boots an Aerie machine sized for the experiment.
func newPXFSTarget(costs costmodel.Costs, arena uint64, nameCache bool) (*target, error) {
	tracer := costmodel.NewTracer()
	sys, err := core.New(core.Options{
		ArenaSize:      arena,
		Costs:          costs,
		AcquireTimeout: 60 * time.Second,
		Tracer:         tracer,
	})
	if err != nil {
		return nil, err
	}
	// Capture-friendly batching: a 256 KB limit ships updates often enough
	// that the amortized shipping cost is spread across many traced ops
	// instead of landing in one giant outlier (same total work as the
	// paper's 8 MB batches, smoother trace).
	sess, err := sys.NewSession(libfs.Config{UID: 1000, BatchLimit: 256 << 10})
	if err != nil {
		return nil, err
	}
	fs := pxfs.New(sess, pxfs.Options{NameCache: nameCache})
	name := "PXFS"
	if !nameCache {
		name = "PXFS-NNC"
	}
	return &target{
		name:   name,
		fb:     filebench.PXFSAdapter{FS: fs},
		micro:  pxfsMicro{fs},
		tracer: tracer,
		costs:  sys.Costs,
		sys:    sys,
	}, nil
}

// newFlatTarget boots an Aerie machine with a FlatFS client.
func newFlatTarget(costs costmodel.Costs, arena uint64) (*target, error) {
	tracer := costmodel.NewTracer()
	sys, err := core.New(core.Options{
		ArenaSize:      arena,
		Costs:          costs,
		AcquireTimeout: 60 * time.Second,
		Tracer:         tracer,
	})
	if err != nil {
		return nil, err
	}
	sess, err := sys.NewSession(libfs.Config{UID: 1000, BatchLimit: 256 << 10})
	if err != nil {
		return nil, err
	}
	fs := flatfs.New(sess, flatfs.Options{})
	return &target{
		name:   "FlatFS",
		kv:     filebench.FlatKV{FS: fs},
		tracer: tracer,
		costs:  sys.Costs,
		sys:    sys,
	}, nil
}

// newKernelTarget builds RamFS or ext3/ext4 behind the simulated VFS.
func newKernelTarget(name string, costs costmodel.Costs, diskBlocks uint64) (*target, error) {
	cshared := costs
	pc := &cshared
	var inner vfs.FileSystem
	switch name {
	case "RamFS":
		inner = ramfs.New()
	case "ext3", "ext4":
		mode := extfs.Ext3
		if name == "ext4" {
			mode = extfs.Ext4
		}
		fs, err := extfs.Mkfs(blockdev.New(diskBlocks, pc, false), mode)
		if err != nil {
			return nil, err
		}
		inner = fs
	default:
		return nil, fmt.Errorf("unknown kernel target %q", name)
	}
	v := vfs.New(inner, vfs.Config{Costs: pc, Accounting: true})
	return &target{
		name:  name,
		fb:    filebench.VFSAdapter{V: v},
		micro: vfsMicro{v},
		costs: pc,
		vfs:   v,
	}, nil
}

// fsTargets builds the Table 1 / Table 2 comparison set.
func fsTargets(cfg Config, arena uint64, diskBlocks uint64, withNNC bool) ([]*target, error) {
	var out []*target
	px, err := newPXFSTarget(cfg.Costs, arena, true)
	if err != nil {
		return nil, err
	}
	out = append(out, px)
	if withNNC {
		nnc, err := newPXFSTarget(cfg.Costs, arena, false)
		if err != nil {
			return nil, err
		}
		out = append(out, nnc)
	}
	for _, k := range []string{"RamFS", "ext3", "ext4"} {
		kt, err := newKernelTarget(k, cfg.Costs, diskBlocks)
		if err != nil {
			return nil, err
		}
		out = append(out, kt)
	}
	return out, nil
}
