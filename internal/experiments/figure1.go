package experiments

import (
	"fmt"
	"time"

	"github.com/aerie-fs/aerie/internal/vfs"
)

// Figure1 reproduces the §3 VFS time breakdown: the fraction of each
// operation's kernel time spent in the entry function, file-descriptor
// management, synchronization, in-memory objects, and naming, measured on
// an ext4-style file system over a RAM disk with cold dentry/inode caches.
// The paper uses 1M files in a 3-level hierarchy; the file count scales
// with cfg.Scale.
func Figure1(cfg Config) error {
	cfg.defaults()
	nfiles := int(100000 * cfg.Scale * 10)
	if nfiles < 500 {
		nfiles = 500
	}
	// 3-level hierarchy: top/mid/leaf files.
	width := 1
	for width*width*width < nfiles {
		width++
	}
	tg, err := newKernelTarget("ext4", cfg.Costs, uint64(nfiles)*4+1<<18)
	if err != nil {
		return err
	}
	v := tg.vfs
	path := func(i int) string {
		a := i % width
		b := (i / width) % width
		c := i / (width * width)
		return fmt.Sprintf("/d%02d/d%02d/f%05d", a, b, c)
	}
	// Populate.
	for a := 0; a < width; a++ {
		if err := v.Mkdir(fmt.Sprintf("/d%02d", a), 0755); err != nil {
			return err
		}
		for b := 0; b < width; b++ {
			if err := v.Mkdir(fmt.Sprintf("/d%02d/d%02d", a, b), 0755); err != nil {
				return err
			}
		}
	}
	for i := 0; i < nfiles; i++ {
		fd, err := v.Open(path(i), vfs.O_RDWR|vfs.O_CREATE, 0644)
		if err != nil {
			return err
		}
		if err := v.Close(fd); err != nil {
			return err
		}
	}

	type opCase struct {
		name string
		run  func(i int) error
	}
	sample := nfiles / 2
	if sample > 2000 {
		sample = 2000
	}
	cases := []opCase{
		{"stat", func(i int) error {
			_, err := v.Stat(path(i))
			return err
		}},
		{"open", func(i int) error {
			fd, err := v.Open(path(i), vfs.O_RDONLY, 0)
			if err != nil {
				return err
			}
			return v.Close(fd)
		}},
		{"create", func(i int) error {
			// Spread creates across the hierarchy as the paper's
			// 1M-file tree does.
			p := fmt.Sprintf("/d%02d/d%02d/new%05d", i%width, (i/width)%width, i)
			fd, err := v.Open(p, vfs.O_RDWR|vfs.O_CREATE, 0644)
			if err != nil {
				return err
			}
			return v.Close(fd)
		}},
		{"rename", func(i int) error {
			return v.Rename(path(i), path(i)+".r")
		}},
		{"unlink", func(i int) error {
			return v.Unlink(path(i) + ".r")
		}},
	}

	fmt.Fprintf(cfg.Out, "Figure 1: VFS-layer time breakdown (%%), cold caches, %d files, 3-level hierarchy\n", nfiles)
	fmt.Fprintf(cfg.Out, "(avg µs includes the concrete FS (journal/disk) time; percentages cover the VFS layer only, as the paper's profile does)\n\n")
	shown := []vfs.Category{vfs.CatEntry, vfs.CatFD, vfs.CatSync, vfs.CatMemObj, vfs.CatNaming}
	fmt.Fprintf(cfg.Out, "%-10s%10s", "Op", "avg µs")
	for _, cat := range shown {
		fmt.Fprintf(cfg.Out, "%18s", cat)
	}
	fmt.Fprintln(cfg.Out)
	for _, c := range cases {
		v.DropCaches() // cold in-memory objects, as in the paper
		v.Accounting().Reset()
		start := time.Now()
		for i := 0; i < sample; i++ {
			if err := c.run(i); err != nil {
				return fmt.Errorf("%s %d: %w", c.name, i, err)
			}
		}
		elapsed := time.Since(start)
		totals, ops := v.Accounting().Snapshot()
		var sum time.Duration
		for _, cat := range shown {
			sum += totals[cat]
		}
		fmt.Fprintf(cfg.Out, "%-10s%10.2f", c.name, float64(elapsed.Microseconds())/float64(sample))
		for _, cat := range shown {
			pct := 0.0
			if sum > 0 {
				pct = 100 * float64(totals[cat]) / float64(sum)
			}
			fmt.Fprintf(cfg.Out, "%17.1f%%", pct)
		}
		fmt.Fprintln(cfg.Out)
		_ = ops
	}
	fmt.Fprintln(cfg.Out)
	return nil
}
