// Write-path microbenchmarks for the pipelined completion window. The
// family runs one multi-client batched-write workload — four sessions, each
// streaming 4KiB appends to its own file, one window batch per append —
// across window sizes K in {1, 4, 16}. K=1 is the synchronous baseline
// (every batch ships inline and the client waits out the RPC round trip
// plus the TFS commit); K>=4 is this PR's pipeline (RotateBatch seals each
// append into the completion window and the background shipper overlaps
// the ship with the next append's client-side SCM writes, while the TFS
// coalesces concurrently arriving batches into group commits).
//
// Costs are the repo's default calibration plus a 100ns/line SCM write
// charge (a Figure-6 midpoint), so the client-side data persist and the
// server-side journal/apply both cost real spin time — exactly the
// overlap the window exists to buy. BENCH_writepath.json records a
// snapshot; `make bench-writepath` reproduces it.
//
// Each K also derives a per-layer time split in the spirit of
// internal/experiments' -breakdown: exclusive rows (client, rpc, lock,
// journal, tfs, scm) that sum to the measured op total. The total for
// K=1 is the summed client-visible op latency (ship time is inside it);
// for K>1 it is client busy time plus all RPC time, because the shipper
// runs the RPCs off the client's goroutines. The sum identity is asserted,
// not just reported.
package aerie_test

import (
	"fmt"
	"sort"
	"sync"
	"testing"
	"time"

	"github.com/aerie-fs/aerie/internal/core"
	"github.com/aerie-fs/aerie/internal/costmodel"
	"github.com/aerie-fs/aerie/internal/libfs"
	"github.com/aerie-fs/aerie/internal/obs"
	"github.com/aerie-fs/aerie/internal/pxfs"
)

const (
	wpClients      = 4
	wpOpsPerClient = 250
	wpWriteSize    = 4096
)

// wpCosts is the calibration for the write-path family: default costs with
// a non-zero SCM line charge so client persists consume time, and the RPC
// round trip injected as a BLOCKING 1ms wait rather than a spin. A real
// transport round trip is wire and scheduling latency — the caller's core
// is parked, not burning — and that is precisely the time a deeper window
// overlaps; a spin-injected round trip would serialize on the CPU and hide
// the pipeline's gain on small hosts. 1ms respects the OS timer floor
// (sub-millisecond sleeps round up to roughly a tick).
func wpCosts() costmodel.Costs {
	c := costmodel.DefaultCosts()
	c.SCMWriteLine = 100 * time.Nanosecond
	c.RPCBlocking = true
	c.RPCRoundTrip = time.Millisecond
	return c
}

// wpResult is one window size's measured run.
type wpResult struct {
	k       int
	ops     int
	wall    time.Duration
	lats    []time.Duration // client-visible per-op latency, all clients
	latSum  int64
	snap    obs.Snapshot
	fences  int64
	grouped int64
}

func (r *wpResult) opsPerSec() float64 {
	return float64(r.ops) / r.wall.Seconds()
}

func (r *wpResult) percentile(p float64) time.Duration {
	if len(r.lats) == 0 {
		return 0
	}
	idx := int(p * float64(len(r.lats)-1))
	return r.lats[idx]
}

// runWritePath measures one window size: wpClients sessions on one machine,
// each appending wpOpsPerClient 4KiB chunks to its own file, one batch per
// append. The sink is reset after setup so the snapshot covers only the
// measured window.
func runWritePath(b *testing.B, k int) *wpResult {
	b.Helper()
	sink := obs.New()
	sys, err := core.New(core.Options{
		ArenaSize:      256 << 20,
		Costs:          wpCosts(),
		Lease:          10 * time.Minute,
		AcquireTimeout: 60 * time.Second,
		Obs:            sink,
	})
	if err != nil {
		b.Fatal(err)
	}
	type client struct {
		sess *libfs.Session
		f    *pxfs.File
	}
	clients := make([]client, wpClients)
	for i := range clients {
		sess, err := sys.NewSession(libfs.Config{
			UID:        uint32(1000 + i),
			Window:     k,
			RenewEvery: time.Hour,
			PoolRefill: 128,
		})
		if err != nil {
			b.Fatal(err)
		}
		fs := pxfs.New(sess, pxfs.Options{NameCache: true})
		f, err := fs.Create(fmt.Sprintf("/stream%d", i), 0644)
		if err != nil {
			b.Fatal(err)
		}
		if err := sess.Sync(); err != nil {
			b.Fatal(err)
		}
		clients[i] = client{sess: sess, f: f}
	}
	// Everything after this is measured workload.
	sink.Reset()
	buf := make([]byte, wpWriteSize)
	for i := range buf {
		buf[i] = byte(i)
	}
	lats := make([][]time.Duration, wpClients)
	errs := make([]error, wpClients)
	var wg sync.WaitGroup
	start := time.Now()
	for i := range clients {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			c := clients[i]
			lat := make([]time.Duration, 0, wpOpsPerClient)
			for op := 0; op < wpOpsPerClient; op++ {
				t0 := time.Now()
				if _, err := c.f.Write(buf); err != nil {
					errs[i] = err
					return
				}
				if k == 1 {
					// Synchronous baseline: ship and wait per append.
					if err := c.sess.Sync(); err != nil {
						errs[i] = err
						return
					}
				} else {
					// Pipelined: seal the append into the window; the
					// background shipper overlaps the RPC with the next
					// append's SCM writes.
					if err := c.sess.RotateBatch(); err != nil {
						errs[i] = err
						return
					}
				}
				lat = append(lat, time.Since(t0))
			}
			// Drain the window; wall-clock time counts, op latency does not
			// (the batches were already acknowledged into the window).
			errs[i] = c.sess.Sync()
			lats[i] = lat
		}(i)
	}
	wg.Wait()
	wall := time.Since(start)
	for i, err := range errs {
		if err != nil {
			b.Fatalf("client %d: %v", i, err)
		}
	}
	res := &wpResult{k: k, ops: wpClients * wpOpsPerClient, wall: wall, snap: sink.Snapshot()}
	for _, lat := range lats {
		res.lats = append(res.lats, lat...)
		for _, d := range lat {
			res.latSum += int64(d)
		}
	}
	sort.Slice(res.lats, func(a, c int) bool { return res.lats[a] < res.lats[c] })
	res.fences = res.snap.Counter("tfs.groupcommit.fences")
	res.grouped = res.snap.Counter("tfs.groupcommit.coalesced")
	for i := range clients {
		if err := clients[i].f.Close(); err != nil {
			b.Fatal(err)
		}
		if err := clients[i].sess.Close(); err != nil {
			b.Fatal(err)
		}
	}
	return res
}

// wpLayer is one exclusive row of the per-layer split.
type wpLayer struct {
	name string
	ns   int64
}

// wpLayers splits the run's op total into the breakdown rows used by
// internal/experiments: client, rpc, lock, journal, tfs, scm — each
// nanosecond counted once. total is the summed client-visible latency plus,
// for pipelined windows, the RPC time the background shipper spent (those
// round trips run off the client goroutines and overlap client work).
// Negative residuals from attribution boundaries are clamped into the
// client row, exactly like experiments.computeLayers.
func wpLayers(r *wpResult) (total int64, rows []wpLayer) {
	rpcCall := r.snap.HistSum("rpc.call")
	dispatch := r.snap.HistSum("rpc.dispatch")
	lockWait := r.snap.HistSum("lock.wait")
	commit := r.snap.HistSum("journal.commit")
	commitSCM := r.snap.Counter("journal.commit.scm_ns")
	scmAll := r.snap.Counter("scm.charged_ns")
	scmClient := r.snap.Counter("scm.client.charged_ns")
	scmServer := scmAll - scmClient

	inlineRPC := int64(0)
	total = r.latSum
	if r.k == 1 {
		inlineRPC = rpcCall // every ship ran inside a timed op
	} else {
		total += rpcCall // ships ran on the shipper, off the client clock
	}
	vals := map[string]int64{
		"client":  r.latSum - inlineRPC - scmClient,
		"rpc":     rpcCall - dispatch,
		"lock":    lockWait,
		"journal": commit - commitSCM,
		"tfs":     dispatch - lockWait - commit - (scmServer - commitSCM),
		"scm":     scmAll,
	}
	order := []string{"client", "rpc", "lock", "journal", "tfs", "scm"}
	for _, l := range order[1:] {
		if vals[l] < 0 {
			vals["client"] += vals[l]
			vals[l] = 0
		}
	}
	if vals["client"] < 0 {
		vals["client"] = 0
	}
	for _, l := range order {
		rows = append(rows, wpLayer{name: l, ns: vals[l]})
	}
	return total, rows
}

// BenchmarkWritePath runs the multi-client batched-append workload at each
// window size and reports throughput, tail latency, and the layer split.
// Run with -benchtime 1x: the workload is internally sized and iterating
// it only repeats the same measurement.
func BenchmarkWritePath(b *testing.B) {
	for _, k := range []int{1, 4, 16} {
		b.Run(fmt.Sprintf("K=%d", k), func(b *testing.B) {
			var res *wpResult
			for i := 0; i < b.N; i++ {
				res = runWritePath(b, k)
			}
			total, rows := wpLayers(res)
			var sum int64
			for _, row := range rows {
				sum += row.ns
			}
			if sum != total {
				b.Fatalf("layer rows sum to %d, op total is %d", sum, total)
			}
			if k > 1 && res.fences == 0 {
				b.Fatalf("pipelined run recorded no group-commit fences")
			}
			b.ReportMetric(res.opsPerSec(), "ops/s")
			b.ReportMetric(float64(res.percentile(0.50))/1e3, "p50-µs")
			b.ReportMetric(float64(res.percentile(0.99))/1e3, "p99-µs")
			b.Logf("K=%d: %d ops in %v (%.0f ops/s), p50 %v p99 %v, fences=%d coalesced=%d",
				k, res.ops, res.wall.Round(time.Microsecond), res.opsPerSec(),
				res.percentile(0.50), res.percentile(0.99), res.fences, res.grouped)
			for _, row := range rows {
				b.Logf("  layer %-8s %12d ns (%5.1f%%)", row.name, row.ns,
					100*float64(row.ns)/float64(total))
			}
		})
	}
}
