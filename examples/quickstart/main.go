// Quickstart: boot an Aerie machine, mount a PXFS client, and use the
// POSIX-style interface — create, write, read, list, rename — all backed by
// emulated storage-class memory with a trusted service enforcing metadata
// integrity.
package main

import (
	"fmt"
	"io"
	"log"

	aerie "github.com/aerie-fs/aerie"
)

func main() {
	// One call builds the whole machine: SCM arena, kernel SCM manager,
	// a formatted volume, and the trusted FS service with its lock
	// service.
	sys, err := aerie.New(aerie.Options{ArenaSize: 64 << 20})
	if err != nil {
		log.Fatal(err)
	}

	// Mount a client (a "process") and attach the POSIX-style interface.
	fs, err := sys.NewPXFS(1000, aerie.PXFSOptions{NameCache: true})
	if err != nil {
		log.Fatal(err)
	}

	if err := fs.Mkdir("/docs", 0755); err != nil {
		log.Fatal(err)
	}
	f, err := fs.Create("/docs/hello.txt", 0644)
	if err != nil {
		log.Fatal(err)
	}
	if _, err := f.Write([]byte("Aerie: file systems without the kernel on the data path.\n")); err != nil {
		log.Fatal(err)
	}
	if err := f.Close(); err != nil {
		log.Fatal(err)
	}
	// Sync ships the batched metadata updates to the trusted service
	// (the libfs equivalent of fsync).
	if err := fs.Sync(); err != nil {
		log.Fatal(err)
	}

	g, err := fs.Open("/docs/hello.txt", aerie.O_RDONLY)
	if err != nil {
		log.Fatal(err)
	}
	content, err := io.ReadAll(g)
	if err != nil {
		log.Fatal(err)
	}
	_ = g.Close()
	fmt.Printf("read back: %s", content)

	if err := fs.Rename("/docs/hello.txt", "/docs/greeting.txt"); err != nil {
		log.Fatal(err)
	}
	ents, err := fs.ReadDir("/docs")
	if err != nil {
		log.Fatal(err)
	}
	for _, e := range ents {
		fmt.Printf("/docs/%s (dir=%v)\n", e.Name, e.IsDir)
	}
	fi, err := fs.Stat("/docs/greeting.txt")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("stat: %d bytes, mode %o, object %v\n", fi.Size, fi.Mode, fi.OID)
}
