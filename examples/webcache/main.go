// Webcache: the paper's headline optimization result (§7.3.2) as a runnable
// program — the same web-proxy cache workload on the generic POSIX
// interface (PXFS) and on the specialized put/get interface (FlatFS), on
// identical machines. FlatFS wins because a get is one operation (no open
// state, no per-read descriptor bookkeeping), files live in a single
// extent, and the flat namespace skips hierarchical resolution.
package main

import (
	"fmt"
	"log"
	"math/rand"
	"time"

	aerie "github.com/aerie-fs/aerie"
)

const (
	objects   = 800
	objSize   = 16 * 1024 // the paper's 16KB mean
	cacheIter = 3000
)

func main() {
	body := make([]byte, objSize)
	rand.New(rand.NewSource(1)).Read(body)

	pxTime := runPXFS(body)
	flatTime := runFlatFS(body)

	fmt.Printf("web-proxy cache, %d objects of %dKB, %d operations:\n",
		objects, objSize/1024, cacheIter)
	fmt.Printf("  PXFS   (open/read/close): %v (%.1f µs/op)\n",
		pxTime.Round(time.Millisecond), float64(pxTime.Microseconds())/cacheIter)
	fmt.Printf("  FlatFS (get/put)        : %v (%.1f µs/op)\n",
		flatTime.Round(time.Millisecond), float64(flatTime.Microseconds())/cacheIter)
	fmt.Printf("  speedup: %.2fx (paper: 45-62%% faster single-threaded, §7.3.2)\n",
		float64(pxTime)/float64(flatTime))
}

func runPXFS(body []byte) time.Duration {
	sys, err := aerie.New(aerie.Options{ArenaSize: 256 << 20})
	if err != nil {
		log.Fatal(err)
	}
	fs, err := sys.NewPXFS(1000, aerie.PXFSOptions{NameCache: true})
	if err != nil {
		log.Fatal(err)
	}
	// Populate the cache directory.
	for i := 0; i < objects; i++ {
		f, err := fs.Create(fmt.Sprintf("/cache-%04d", i), 0644)
		if err != nil {
			log.Fatal(err)
		}
		if _, err := f.Write(body); err != nil {
			log.Fatal(err)
		}
		_ = f.Close()
	}
	rng := rand.New(rand.NewSource(2))
	buf := make([]byte, objSize)
	start := time.Now()
	for i := 0; i < cacheIter; i++ {
		name := fmt.Sprintf("/cache-%04d", rng.Intn(objects))
		if rng.Intn(5) == 0 { // 20% refill
			f, err := fs.Create(name, 0644)
			if err != nil {
				log.Fatal(err)
			}
			if _, err := f.Write(body); err != nil {
				log.Fatal(err)
			}
			_ = f.Close()
		} else { // 80% hit
			f, err := fs.Open(name, aerie.O_RDONLY)
			if err != nil {
				log.Fatal(err)
			}
			if _, err := f.ReadAt(buf, 0); err != nil && err.Error() != "EOF" {
				log.Fatal(err)
			}
			_ = f.Close()
		}
	}
	return time.Since(start)
}

func runFlatFS(body []byte) time.Duration {
	sys, err := aerie.New(aerie.Options{ArenaSize: 256 << 20})
	if err != nil {
		log.Fatal(err)
	}
	fs, err := sys.NewFlatFS(1000, aerie.FlatFSOptions{})
	if err != nil {
		log.Fatal(err)
	}
	for i := 0; i < objects; i++ {
		if err := fs.Put(fmt.Sprintf("cache-%04d", i), body); err != nil {
			log.Fatal(err)
		}
	}
	rng := rand.New(rand.NewSource(2))
	buf := make([]byte, objSize)
	start := time.Now()
	for i := 0; i < cacheIter; i++ {
		name := fmt.Sprintf("cache-%04d", rng.Intn(objects))
		if rng.Intn(5) == 0 {
			if err := fs.Put(name, body); err != nil {
				log.Fatal(err)
			}
		} else {
			// The paper's get copies straight into the application
			// buffer (§6.2).
			if _, err := fs.GetInto(name, buf); err != nil {
				log.Fatal(err)
			}
		}
	}
	return time.Since(start)
}
