// Sharing: the life of a shared file (§4.3), acted out by two client
// processes on one machine. Client A creates a file and buffers its
// metadata locally; client B's access revokes A's locks, which ships A's
// batched updates to the trusted service before B reads. Then a third
// client crashes with unshipped updates, and the example shows they are
// discarded — metadata integrity without trusting clients.
package main

import (
	"fmt"
	"io"
	"log"
	"time"

	aerie "github.com/aerie-fs/aerie"
)

func main() {
	sys, err := aerie.New(aerie.Options{ArenaSize: 64 << 20, Lease: 500 * time.Millisecond})
	if err != nil {
		log.Fatal(err)
	}

	// Client A creates a file. Nothing has reached the trusted service
	// yet: the create, the extent attachments, and the size update sit in
	// A's local metadata log (§5.3.5 batching).
	sessA, err := sys.NewSession(aerie.SessionConfig{UID: 1000})
	if err != nil {
		log.Fatal(err)
	}
	a := aerie.PXFSOn(sessA, aerie.PXFSOptions{NameCache: true})
	f, err := a.Create("/shared.txt", 0644)
	if err != nil {
		log.Fatal(err)
	}
	if _, err := f.Write([]byte("written by client A")); err != nil {
		log.Fatal(err)
	}
	_ = f.Close()
	fmt.Printf("A: created /shared.txt, %d metadata updates buffered locally\n", sessA.PendingOps())

	// Client B opens the same file. The lock service revokes A's cached
	// locks; A's clerk ships the batch before releasing, so B sees a
	// consistent file.
	sessB, err := sys.NewSession(aerie.SessionConfig{UID: 1001})
	if err != nil {
		log.Fatal(err)
	}
	b := aerie.PXFSOn(sessB, aerie.PXFSOptions{NameCache: true})
	g, err := b.Open("/shared.txt", aerie.O_RDONLY)
	if err != nil {
		log.Fatal(err)
	}
	content, _ := io.ReadAll(g)
	_ = g.Close()
	fmt.Printf("B: read %q (A's updates were shipped on revocation)\n", content)
	fmt.Printf("A: %d updates still buffered\n", sessA.PendingOps())

	// B appends; A re-reads the combined file.
	h, err := b.OpenFile("/shared.txt", aerie.O_RDWR|aerie.O_APPEND, 0)
	if err != nil {
		log.Fatal(err)
	}
	if _, err := h.Write([]byte(" + appended by B")); err != nil {
		log.Fatal(err)
	}
	_ = h.Close()
	g2, err := a.Open("/shared.txt", aerie.O_RDONLY)
	if err != nil {
		log.Fatal(err)
	}
	content, _ = io.ReadAll(g2)
	_ = g2.Close()
	fmt.Printf("A: re-read %q\n", content)

	// Client C stages a file and dies without shipping. Its lease
	// expires; the updates are implicitly discarded (§4.3) and its
	// pre-allocated storage is reclaimed.
	sessC, err := sys.NewSession(aerie.SessionConfig{UID: 1002})
	if err != nil {
		log.Fatal(err)
	}
	c := aerie.PXFSOn(sessC, aerie.PXFSOptions{})
	cf, err := c.Create("/doomed.txt", 0644)
	if err != nil {
		log.Fatal(err)
	}
	_, _ = cf.Write([]byte("never to be seen"))
	_ = cf.Close()
	fmt.Printf("C: created /doomed.txt (%d updates buffered), then crashes\n", sessC.PendingOps())
	sessC.Abandon()

	// After C's lease expires, B can take the locks; /doomed.txt never
	// existed as far as the file system is concerned.
	time.Sleep(700 * time.Millisecond)
	if _, err := b.Stat("/doomed.txt"); err != nil {
		fmt.Printf("B: stat /doomed.txt -> %v (crashed client's updates discarded)\n", err)
	} else {
		fmt.Println("B: unexpectedly found /doomed.txt!")
	}

	_ = sessA.Close()
	_ = sessB.Close()
}
