// Mailstore: the paper's motivating workload for interface specialization
// (§1, §6.2) — a mail message store that keeps many small files in one flat
// namespace and accesses them with get/put instead of
// open/read/write/close. The example stores a mailbox on FlatFS, then reads
// the same messages through PXFS to show that both interfaces share one
// layout.
package main

import (
	"fmt"
	"log"
	"time"

	aerie "github.com/aerie-fs/aerie"
)

func main() {
	sys, err := aerie.New(aerie.Options{ArenaSize: 128 << 20})
	if err != nil {
		log.Fatal(err)
	}
	sess, err := sys.NewSession(aerie.SessionConfig{UID: 1000})
	if err != nil {
		log.Fatal(err)
	}
	defer sess.Close()
	mbox := aerie.FlatFSOn(sess, aerie.FlatFSOptions{})

	// Deliver a batch of messages: one put per message, no file
	// descriptors, no per-message open/close.
	const messages = 2000
	start := time.Now()
	for i := 0; i < messages; i++ {
		key := fmt.Sprintf("inbox-%05d", i)
		body := fmt.Sprintf("From: sender-%d@example.com\nSubject: message %d\n\nbody %d\n", i%7, i, i)
		if err := mbox.Put(key, []byte(body)); err != nil {
			log.Fatalf("deliver %d: %v", i, err)
		}
	}
	deliver := time.Since(start)

	// An IMAP-style fetch: random access by key.
	start = time.Now()
	for i := 0; i < messages; i += 3 {
		if _, err := mbox.Get(fmt.Sprintf("inbox-%05d", i)); err != nil {
			log.Fatalf("fetch %d: %v", i, err)
		}
	}
	fetch := time.Since(start)

	// Expunge a third of the mailbox.
	start = time.Now()
	for i := 0; i < messages; i += 3 {
		if err := mbox.Erase(fmt.Sprintf("inbox-%05d", i)); err != nil {
			log.Fatalf("expunge %d: %v", i, err)
		}
	}
	expunge := time.Since(start)
	if err := mbox.Sync(); err != nil {
		log.Fatal(err)
	}

	n, err := mbox.Count()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("mailstore: delivered %d msgs in %v (%.1f µs/msg)\n",
		messages, deliver.Round(time.Millisecond), float64(deliver.Microseconds())/messages)
	fmt.Printf("           fetched   %d msgs in %v\n", messages/3, fetch.Round(time.Millisecond))
	fmt.Printf("           expunged  %d msgs in %v; %d remain\n", messages/3, expunge.Round(time.Millisecond), n)

	// The same mailbox through the POSIX interface: FlatFS's namespace is
	// just a directory (§6.2 Discussion).
	px := aerie.PXFSOn(sess, aerie.PXFSOptions{})
	fi, err := px.Stat("/inbox-00001")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("same message via PXFS: /inbox-00001 is %d bytes\n", fi.Size)
}
