// Package aerie is a Go implementation of Aerie (Volos et al., EuroSys
// 2014): a decentralized file-system architecture that exposes storage-class
// memory directly to user-mode programs. A machine consists of an emulated
// SCM arena, the kernel SCM manager (allocation, mapping, page protection),
// and a trusted file-system service (metadata integrity, distributed locks,
// crash-consistent journaling); clients mount sessions that read data and
// metadata straight from memory and ship batched metadata updates to the
// service.
//
// Two file-system interfaces share one layout:
//
//   - PXFS, a POSIX-style hierarchical file system
//     (Open/Read/Write/Unlink/Rename/...), and
//   - FlatFS, a put/get/erase store for many small files in a flat
//     namespace, with fine-grained bucket locking.
//
// Quick start:
//
//	sys, _ := aerie.New(aerie.Options{ArenaSize: 64 << 20})
//	fs, _ := sys.NewPXFS(1000, aerie.PXFSOptions{NameCache: true})
//	f, _ := fs.Create("/hello.txt", 0644)
//	f.Write([]byte("hi"))
//	f.Close()
//	fs.Sync()
//
// See DESIGN.md for the system inventory and EXPERIMENTS.md for the
// reproduction of the paper's evaluation.
package aerie

import (
	"github.com/aerie-fs/aerie/internal/core"
	"github.com/aerie-fs/aerie/internal/costmodel"
	"github.com/aerie-fs/aerie/internal/flatfs"
	"github.com/aerie-fs/aerie/internal/fsproto"
	"github.com/aerie-fs/aerie/internal/libfs"
	"github.com/aerie-fs/aerie/internal/obs"
	"github.com/aerie-fs/aerie/internal/pxfs"
	"github.com/aerie-fs/aerie/internal/scm"
	"github.com/aerie-fs/aerie/internal/sobj"
	"github.com/aerie-fs/aerie/internal/tfs"
)

// StatfsInfo is the volume-wide space and object accounting returned by
// PXFS.Statfs / FlatFS.Statfs / Session.Statfs (statvfs/df).
type StatfsInfo = fsproto.StatfsReply

// Typed resource-exhaustion errors surfaced by Sync/FlushUpdates and the
// interface layers. Test with errors.Is.
var (
	// ErrNoSpace: the TFS could not reserve worst-case space for a batch
	// (or an allocation ran dry). The rejected batch's staged extents were
	// reclaimed and the session reconverged with committed state; freeing
	// space lets it continue.
	ErrNoSpace = fsproto.ErrNoSpace
	// ErrBatchTooLarge: a single indivisible logged group exceeds what the
	// journal can ever hold.
	ErrBatchTooLarge = fsproto.ErrBatchTooLarge
	// ErrBusy: the TFS shed the batch under load and in-call retries were
	// exhausted; the batch stays parked and a later Sync re-ships it.
	ErrBusy = fsproto.ErrBusy
	// ErrQuotaExceeded: the batch's worst-case space demand would push its
	// tenant past its configured quota. Distinct from ErrNoSpace — the
	// volume may have plenty of free space; deleting the tenant's own
	// files restores headroom.
	ErrQuotaExceeded = fsproto.ErrQuotaExceeded
)

// TenantConfig is one tenant's isolation policy (scheduling weight, space
// quota), set at boot via Options.Tenants or at runtime via
// Session.TenantCtl.
type TenantConfig = tfs.TenantConfig

// TenantUsage is one (tenant, shard) accounting row returned by
// Session.TenantStat: configured policy plus live used/reserved bytes and
// shed/reject counters.
type TenantUsage = fsproto.TenantUsage

// Typed volume-file errors surfaced by New (Options.VolumePath) and Open.
// Test with errors.Is.
var (
	// ErrMapFailed: the volume file could not be created, grown, or
	// mapped. New degrades to the volatile arena on this (see
	// System.Degraded); Open fails hard.
	ErrMapFailed = scm.ErrMapFailed
	// ErrBadVolume: the file is not an Aerie volume — bad magic, torn or
	// truncated, checksum mismatch, or impossible geometry.
	ErrBadVolume = scm.ErrBadVolume
	// ErrVersionMismatch: the volume's layout version is newer than this
	// build understands.
	ErrVersionMismatch = scm.ErrVersionMismatch
	// ErrDirtyVolume: the volume was not cleanly closed and the open
	// required a clean one.
	ErrDirtyVolume = scm.ErrDirtyVolume
)

// Options configures a machine (see core.Options for field docs).
type Options = core.Options

// Costs holds the injected hardware/OS latencies.
type Costs = costmodel.Costs

// OID is a storage-object identifier.
type OID = sobj.OID

// PXFS is the POSIX-style interface; File is an open PXFS file.
type (
	PXFS     = pxfs.FS
	File     = pxfs.File
	FileInfo = pxfs.FileInfo
	DirEntry = pxfs.DirEntry
	// PXFSOptions tunes a PXFS client (name cache on/off).
	PXFSOptions = pxfs.Options
)

// FlatFS is the specialized put/get/erase interface.
type (
	FlatFS = flatfs.FS
	// FlatFSOptions tunes a FlatFS client.
	FlatFSOptions = flatfs.Options
)

// Session is a mounted libFS client, usable by several interface layers at
// once (a PXFS and a FlatFS view may share one session).
type Session = libfs.Session

// SessionConfig tunes a client session (batch limit, pool size, tracer).
type SessionConfig = libfs.Config

// ObsSink is the per-layer observability sink (counters, latency
// histograms, trace ring). Create one with NewObs, pass it in
// Options.Obs, and read it back with System.Obs().Snapshot().
type ObsSink = obs.Sink

// ObsSnapshot is a deterministic point-in-time copy of a sink.
type ObsSnapshot = obs.Snapshot

// NewObs creates a live observability sink with the default trace-ring
// size.
func NewObs() *ObsSink { return obs.New() }

// PXFS open flags.
const (
	O_RDONLY = pxfs.O_RDONLY
	O_RDWR   = pxfs.O_RDWR
	O_CREATE = pxfs.O_CREATE
	O_TRUNC  = pxfs.O_TRUNC
	O_APPEND = pxfs.O_APPEND
)

// System is a running Aerie machine.
type System struct {
	*core.System
}

// New formats and boots a machine: SCM arena, SCM manager, one volume, the
// TFS with its lock service. With Options.VolumePath set, the arena is an
// mmap-backed file that survives process death; call Close for a clean
// shutdown and Open to come back.
func New(opts Options) (*System, error) {
	sys, err := core.New(opts)
	if err != nil {
		return nil, err
	}
	return &System{System: sys}, nil
}

// Open mounts an existing volume file and recovers the machine inside it
// (journal replay included). Unlike New it never degrades to the volatile
// arena: a torn, truncated, foreign, or future-versioned file is a typed
// hard error.
func Open(path string, opts Options) (*System, error) {
	sys, err := core.Open(path, opts)
	if err != nil {
		return nil, err
	}
	return &System{System: sys}, nil
}

// NewPXFS mounts a client session for uid and attaches a PXFS view.
func (s *System) NewPXFS(uid uint32, opts PXFSOptions) (*PXFS, error) {
	sess, err := s.NewSession(SessionConfig{UID: uid})
	if err != nil {
		return nil, err
	}
	return pxfs.New(sess, opts), nil
}

// NewFlatFS mounts a client session for uid and attaches a FlatFS view.
func (s *System) NewFlatFS(uid uint32, opts FlatFSOptions) (*FlatFS, error) {
	sess, err := s.NewSession(SessionConfig{UID: uid})
	if err != nil {
		return nil, err
	}
	return flatfs.New(sess, opts), nil
}

// PXFSOn attaches a PXFS view to an existing session.
func PXFSOn(sess *Session, opts PXFSOptions) *PXFS { return pxfs.New(sess, opts) }

// FlatFSOn attaches a FlatFS view to an existing session.
func FlatFSOn(sess *Session, opts FlatFSOptions) *FlatFS { return flatfs.New(sess, opts) }
