// Shard-scaling benchmark for the partitioned trusted service. A real
// single-threaded Fileserver run on PXFS records per-op phase traces
// (local compute plus intervals holding locks and TFS service time); the
// event-driven simulator then replays 64–1024 client processes against
// {1, 2, 4, 8} TFS shards — each client in its own directory, each shard
// its own service point, a thread's "tfs" phases routed to its home shard
// exactly as namespace placement routes a client's working directory. The
// single service saturates once ~TFSThreads clients keep it busy; the
// benchmark asserts the sharded sets move that ceiling up monotonically
// (1 -> 2 -> 4 shards at 256+ clients) rather than just reporting it.
// BENCH_shard.json records a snapshot; `make bench-shard` reproduces it.
package aerie_test

import (
	"fmt"
	"testing"
	"time"

	"github.com/aerie-fs/aerie/internal/core"
	"github.com/aerie-fs/aerie/internal/costmodel"
	"github.com/aerie-fs/aerie/internal/experiments"
	"github.com/aerie-fs/aerie/internal/filebench"
	"github.com/aerie-fs/aerie/internal/libfs"
	"github.com/aerie-fs/aerie/internal/pxfs"
)

// shardBenchTrace captures the Fileserver phase trace the simulation
// replays: a warmup pass populates pools, lock caches, and the name cache,
// then a traced pass records steady state.
func shardBenchTrace(b *testing.B) []costmodel.OpTrace {
	b.Helper()
	tracer := costmodel.NewTracer()
	sys, err := core.New(core.Options{
		ArenaSize:      256 << 20,
		Costs:          costmodel.DefaultCosts(),
		AcquireTimeout: 60 * time.Second,
		Tracer:         tracer,
	})
	if err != nil {
		b.Fatal(err)
	}
	sess, err := sys.NewSession(libfs.Config{UID: 1000, BatchLimit: 256 << 10})
	if err != nil {
		b.Fatal(err)
	}
	fs := filebench.PXFSAdapter{FS: pxfs.New(sess, pxfs.Options{NameCache: true})}
	p := filebench.Fileserver(0.05)
	if err := filebench.Setup(fs, p); err != nil {
		b.Fatal(err)
	}
	if _, err := filebench.Run(fs, p, filebench.RunOpts{Iterations: 40, Seed: 99}); err != nil {
		b.Fatal(err)
	}
	tracer.Reset()
	if _, err := filebench.Run(fs, p, filebench.RunOpts{Iterations: 40, Tracer: tracer}); err != nil {
		b.Fatal(err)
	}
	return tracer.Ops()
}

// BenchmarkShardScale runs the (clients, shards) grid and asserts the
// scaling shape. Run with -benchtime 1x: the simulation is deterministic
// virtual time, so one pass is the measurement. The reported table is the
// 64–1024-client range; a few sub-64 loads are simulated too, because the
// knee of every curve (the load where the service saturates) sits below 64
// at one shard and must be shown to move right as shards are added.
func BenchmarkShardScale(b *testing.B) {
	trace := shardBenchTrace(b)
	kneeCounts := []int{4, 8, 16, 32}
	clientCounts := []int{64, 128, 256, 512, 1024}
	shardCounts := []int{1, 2, 4, 8}
	allCounts := append(append([]int{}, kneeCounts...), clientCounts...)
	for i := 0; i < b.N; i++ {
		tput := make(map[[2]int]float64)
		for _, shards := range shardCounts {
			for _, clients := range allCounts {
				r := experiments.ShardScalePoint(trace, clients, shards)
				tput[[2]int{shards, clients}] = r.Throughput
			}
			for _, clients := range clientCounts {
				b.ReportMetric(tput[[2]int{shards, clients}], fmt.Sprintf("ops/s-s%d-c%d", shards, clients))
			}
			row := fmt.Sprintf("shards=%d:", shards)
			for _, clients := range allCounts {
				row += fmt.Sprintf(" %d=%.0f", clients, tput[[2]int{shards, clients}])
			}
			b.Log(row)
		}
		// The acceptance shape, part 1: with the service saturated (256+
		// clients), doubling shards from 1 to 2 and 2 to 4 must each buy a
		// real multiplier, not just noise.
		for _, clients := range []int{256, 512, 1024} {
			t1 := tput[[2]int{1, clients}]
			t2 := tput[[2]int{2, clients}]
			t4 := tput[[2]int{4, clients}]
			if t2 < 1.5*t1 {
				b.Fatalf("%d clients: 2 shards %.0f ops/s, want >= 1.5x the 1-shard %.0f", clients, t2, t1)
			}
			if t4 < 1.5*t2 {
				b.Fatalf("%d clients: 4 shards %.0f ops/s, want >= 1.5x the 2-shard %.0f", clients, t4, t2)
			}
		}
		// Part 2: the knee moves right. knee(k) is the smallest load whose
		// throughput reaches 90% of curve k's ceiling; more shards must
		// keep absorbing offered load past the point where one shard (six
		// service threads) has flattened.
		knee := func(shards int) int {
			var max float64
			for _, clients := range allCounts {
				if t := tput[[2]int{shards, clients}]; t > max {
					max = t
				}
			}
			for _, clients := range allCounts {
				if tput[[2]int{shards, clients}] >= 0.9*max {
					return clients
				}
			}
			return allCounts[len(allCounts)-1]
		}
		k1, k4, k8 := knee(1), knee(4), knee(8)
		b.Logf("knee: 1 shard at %d clients, 4 shards at %d, 8 shards at %d", k1, k4, k8)
		if k4 <= k1 || k8 <= k1 {
			b.Fatalf("knee never moved right: 1 shard saturates at %d clients, 4 shards at %d, 8 shards at %d", k1, k4, k8)
		}
	}
}
