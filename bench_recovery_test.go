// Recovery-path benchmarks for the mmap-backed volume: how long does it
// take to come back from a kill, as a function of how much the volume
// holds? Each size populates a volume file with N 8KiB files, leaves a
// non-empty redo journal behind (an in-process crash armed at
// tfs.apply.checkpoint — records committed but not yet checkpointed), and
// abandons the mapping without a clean close, exactly the state a SIGKILL
// leaves. The measured phase then reopens the file with core.Open and runs
// Fsck(repair), splitting the open into the obs phase counters
// core.open.{map,attach,recover}_ns — the same -breakdown machinery the
// other benches use. BENCH_recovery.json records a snapshot;
// `make bench-recovery` reproduces it.
package aerie_test

import (
	"fmt"
	"path/filepath"
	"testing"
	"time"

	"github.com/aerie-fs/aerie/internal/core"
	"github.com/aerie-fs/aerie/internal/faultinject"
	"github.com/aerie-fs/aerie/internal/libfs"
	"github.com/aerie-fs/aerie/internal/obs"
	"github.com/aerie-fs/aerie/internal/pxfs"
)

const (
	recFileSize = 8 << 10
	// recDirtyTail is how many extra inserts run after the crash is armed:
	// the journal the reopen must replay holds the committed-but-not-
	// checkpointed slice of these.
	recDirtyTail = 32
)

// buildDirtyVolume populates a volume with nFiles 8KiB files, then crashes
// the machine in-process between journal commit and checkpoint and abandons
// the mapping — a corpse with a dirty flag and a non-empty journal.
func buildDirtyVolume(b *testing.B, path string, nFiles int) {
	b.Helper()
	inj := faultinject.New()
	inj.Disable()
	sys, err := core.New(core.Options{
		ArenaSize:      128 << 20,
		VolumePath:     path,
		Lease:          time.Hour,
		AcquireTimeout: 30 * time.Second,
		Faults:         inj,
	})
	if err != nil {
		b.Fatal(err)
	}
	if err := sys.Degraded(); err != nil {
		b.Fatal(err)
	}
	sess, err := sys.NewSession(libfs.Config{UID: 1000, RenewEvery: time.Hour})
	if err != nil {
		b.Fatal(err)
	}
	fs := pxfs.New(sess, pxfs.Options{NameCache: true})
	buf := make([]byte, recFileSize)
	for i := range buf {
		buf[i] = byte(i)
	}
	for i := 0; i < nFiles; i++ {
		f, err := fs.Create(fmt.Sprintf("/f%04d", i), 0o644)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := f.Write(buf); err != nil {
			b.Fatal(err)
		}
		if err := f.Close(); err != nil {
			b.Fatal(err)
		}
		if i%64 == 63 {
			if err := fs.Sync(); err != nil {
				b.Fatal(err)
			}
		}
	}
	if err := fs.Sync(); err != nil {
		b.Fatal(err)
	}
	// Dirty tail: arm the crash between commit and checkpoint, then keep
	// inserting until it fires.
	inj.CrashAt("tfs.apply.checkpoint", 1)
	inj.Enable()
	crash, _ := faultinject.Run(func() error {
		for i := 0; i < recDirtyTail; i++ {
			f, err := fs.Create(fmt.Sprintf("/tail%02d", i), 0o644)
			if err != nil {
				return err
			}
			if _, err := f.Write(buf); err != nil {
				return err
			}
			if err := f.Close(); err != nil {
				return err
			}
			if err := fs.Sync(); err != nil {
				return err
			}
		}
		return nil
	})
	inj.Disable()
	if crash == nil {
		b.Fatal("dirty-tail crash never fired")
	}
	sys.TFS.Locks.Shutdown()
	sys.Vol.Abandon()
}

// BenchmarkRecovery measures reopening the corpse: core.Open (map +
// manager attach + journal replay) and Fsck(repair), per populated size.
// Run with -benchtime 1x; each iteration rebuilds its own corpse.
func BenchmarkRecovery(b *testing.B) {
	for _, nFiles := range []int{64, 512, 2048} {
		b.Run(fmt.Sprintf("files=%d", nFiles), func(b *testing.B) {
			var openNS, fsckNS, mapNS, attachNS, recoverNS int64
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				path := filepath.Join(b.TempDir(), "corpse.aerie")
				buildDirtyVolume(b, path, nFiles)
				sink := obs.New()
				b.StartTimer()

				t0 := time.Now()
				sys, err := core.Open(path, core.Options{
					Lease:          time.Hour,
					AcquireTimeout: 30 * time.Second,
					Obs:            sink,
				})
				if err != nil {
					b.Fatal(err)
				}
				openNS += time.Since(t0).Nanoseconds()
				t1 := time.Now()
				rep, err := sys.TFS.Fsck(true)
				if err != nil {
					b.Fatal(err)
				}
				fsckNS += time.Since(t1).Nanoseconds()

				b.StopTimer()
				if !sys.Vol.WasDirty() {
					b.Fatal("corpse volume reopened clean")
				}
				if rep.LostBlocks != 0 {
					b.Fatalf("recovery lost blocks: %v", rep)
				}
				// Spot-check: the last synced pre-tail file survived intact.
				sess, err := sys.NewSession(libfs.Config{UID: 2000, RenewEvery: time.Hour})
				if err != nil {
					b.Fatal(err)
				}
				fs := pxfs.New(sess, pxfs.Options{})
				f, err := fs.Open(fmt.Sprintf("/f%04d", nFiles-1), pxfs.O_RDONLY)
				if err != nil {
					b.Fatalf("populated file lost: %v", err)
				}
				probe := make([]byte, recFileSize)
				if n, err := f.ReadAt(probe, 0); err != nil || n != recFileSize {
					b.Fatalf("populated file short: %d, %v", n, err)
				}
				_ = f.Close()
				_ = sess.Close()
				snap := sink.Snapshot()
				mapNS += snap.Counter("core.open.map_ns")
				attachNS += snap.Counter("core.open.attach_ns")
				recoverNS += snap.Counter("core.open.recover_ns")
				if err := sys.Close(); err != nil {
					b.Fatal(err)
				}
				b.StartTimer()
			}
			n := int64(b.N)
			b.ReportMetric(float64(openNS/n)/1e6, "open-ms")
			b.ReportMetric(float64(fsckNS/n)/1e6, "fsck-ms")
			b.Logf("files=%d: open %.3fms (map %.3fms, attach %.3fms, recover %.3fms), fsck %.3fms, volume bytes %d",
				nFiles,
				float64(openNS/n)/1e6, float64(mapNS/n)/1e6, float64(attachNS/n)/1e6,
				float64(recoverNS/n)/1e6, float64(fsckNS/n)/1e6, int64(nFiles)*recFileSize)
		})
	}
}
