package aerie_test

import (
	"io"
	"testing"

	aerie "github.com/aerie-fs/aerie"
)

func TestPublicAPIQuickstart(t *testing.T) {
	sys, err := aerie.New(aerie.Options{ArenaSize: 64 << 20})
	if err != nil {
		t.Fatal(err)
	}
	fs, err := sys.NewPXFS(1000, aerie.PXFSOptions{NameCache: true})
	if err != nil {
		t.Fatal(err)
	}
	f, err := fs.Create("/hello.txt", 0644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("hello from the public API")); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	if err := fs.Sync(); err != nil {
		t.Fatal(err)
	}
	g, err := fs.Open("/hello.txt", aerie.O_RDONLY)
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 25)
	if _, err := io.ReadFull(g, buf); err != nil {
		t.Fatal(err)
	}
	if string(buf) != "hello from the public API" {
		t.Fatalf("got %q", buf)
	}
	_ = g.Close()
}

func TestSharedSessionBothInterfaces(t *testing.T) {
	sys, err := aerie.New(aerie.Options{ArenaSize: 64 << 20})
	if err != nil {
		t.Fatal(err)
	}
	sess, err := sys.NewSession(aerie.SessionConfig{UID: 1000})
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()
	flat := aerie.FlatFSOn(sess, aerie.FlatFSOptions{})
	px := aerie.PXFSOn(sess, aerie.PXFSOptions{})
	if err := flat.Put("note", []byte("one layout, two interfaces")); err != nil {
		t.Fatal(err)
	}
	if err := flat.Sync(); err != nil {
		t.Fatal(err)
	}
	fi, err := px.Stat("/note")
	if err != nil {
		t.Fatal(err)
	}
	if fi.Size != 26 {
		t.Fatalf("size = %d", fi.Size)
	}
}

func TestCrashRecoveryThroughPublicAPI(t *testing.T) {
	sys, err := aerie.New(aerie.Options{ArenaSize: 64 << 20, TrackPersistence: true})
	if err != nil {
		t.Fatal(err)
	}
	fs, err := sys.NewFlatFS(1000, aerie.FlatFSOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if err := fs.Put("durable", []byte("survives power loss")); err != nil {
		t.Fatal(err)
	}
	if err := fs.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := sys.CrashAndRecover(); err != nil {
		t.Fatal(err)
	}
	fs2, err := sys.NewFlatFS(1001, aerie.FlatFSOptions{})
	if err != nil {
		t.Fatal(err)
	}
	got, err := fs2.Get("durable")
	if err != nil || string(got) != "survives power loss" {
		t.Fatalf("after crash: %q %v", got, err)
	}
}
