// Long-haul aging benchmark: repeated rounds of log-rotate and varmail
// churn against one volume, sampling allocator fragmentation and fixed-probe
// read latency after every round (internal/agesweep). The trajectory — not
// any single number — is the result: a healthy allocator's fragmentation
// index plateaus instead of drifting toward 1, and the probe read path must
// not degrade by more than the generous slowdown ratio even after every
// round's churn. The run also re-proves the no-leak invariants each round
// (journal idle, fsck clean). BENCH_aging.json records a snapshot;
// `make bench-aging` reproduces it.
package aerie_test

import (
	"encoding/json"
	"os"
	"testing"

	"github.com/aerie-fs/aerie/internal/agesweep"
)

const (
	agingMaxFragIndex = 0.75
	agingMaxSlowdown  = 10.0
)

func BenchmarkAging(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := agesweep.Run(agesweep.Config{
			Rounds:  6,
			Iters:   25,
			Threads: 2,
			Logf:    b.Logf,
		})
		if err != nil {
			b.Fatal(err)
		}
		if v := res.CheckBounds(agingMaxFragIndex, agingMaxSlowdown); len(v) != 0 {
			for _, s := range v {
				b.Error(s)
			}
			b.Fatal("aging bounds violated")
		}
		last := res.Rounds[len(res.Rounds)-1]
		b.ReportMetric(last.FragIndex, "fragindex")
		b.ReportMetric(float64(last.Fragments), "fragments")
		b.ReportMetric(res.ReadSlowdown(), "readslowdown")
		b.ReportMetric(float64(last.ReadNsPerOp), "probe-ns/read")
		// AERIE_BENCH_SNAPSHOT=1 records the committed snapshot.
		if os.Getenv("AERIE_BENCH_SNAPSHOT") != "" {
			out, err := json.MarshalIndent(res, "", "  ")
			if err != nil {
				b.Fatal(err)
			}
			if err := os.WriteFile("BENCH_aging.json", append(out, '\n'), 0644); err != nil {
				b.Fatal(err)
			}
		}
	}
}
