// Read-path microbenchmarks for the zero-copy Slicer path. Each family
// compares "slice" (the Slicer fast path the libFS direct readers use)
// against "copy" (the Read fallback, which is also what the seed tree did
// on every access), so one `-benchmem` run yields both the PR and the
// pre-PR numbers. BENCH_readpath.json records a snapshot.
package aerie_test

import (
	"fmt"
	"math/rand"
	"testing"

	"github.com/aerie-fs/aerie/internal/alloc"
	"github.com/aerie-fs/aerie/internal/pxfs"
	"github.com/aerie-fs/aerie/internal/scm"
	"github.com/aerie-fs/aerie/internal/sobj"
)

// copyOnly hides the arena's Slice method, forcing the object layer down
// the copying fallback — the seed tree's behavior.
type copyOnly struct{ inner scm.Space }

func (c copyOnly) Read(addr uint64, p []byte) error        { return c.inner.Read(addr, p) }
func (c copyOnly) Write(addr uint64, p []byte) error       { return c.inner.Write(addr, p) }
func (c copyOnly) WriteStream(addr uint64, p []byte) error { return c.inner.WriteStream(addr, p) }
func (c copyOnly) Flush(addr uint64, n int) error          { return c.inner.Flush(addr, n) }
func (c copyOnly) BFlush()                                 { c.inner.BFlush() }
func (c copyOnly) Fence()                                  { c.inner.Fence() }
func (c copyOnly) Atomic64(addr uint64, v uint64) error    { return c.inner.Atomic64(addr, v) }
func (c copyOnly) Size() uint64                            { return c.inner.Size() }

type readPathEnv struct {
	mem *scm.Memory
	bd  *alloc.Buddy
}

func newReadPathEnv(b *testing.B) *readPathEnv {
	b.Helper()
	// Benchmarks leave persistence tracking off, like the arena doc says.
	mem := scm.New(scm.Config{Size: 64 << 20})
	bd, err := alloc.Format(mem, scm.PageSize, 1<<20, 48<<20)
	if err != nil {
		b.Fatal(err)
	}
	return &readPathEnv{mem: mem, bd: bd}
}

func benchCollection(b *testing.B, e *readPathEnv, nkeys int) (*sobj.Collection, [][]byte) {
	b.Helper()
	c, err := sobj.CreateCollection(e.mem, e.bd, 0644)
	if err != nil {
		b.Fatal(err)
	}
	keys := make([][]byte, nkeys)
	for i := range keys {
		keys[i] = []byte(fmt.Sprintf("path-component-%05d", i))
		oid, err := sobj.MakeOID(uint64(i+1)*scm.PageSize+1<<26, sobj.TypeMFile)
		if err != nil {
			b.Fatal(err)
		}
		if err := c.Insert(e.bd, keys[i], oid); err != nil {
			b.Fatal(err)
		}
	}
	return c, keys
}

func BenchmarkReadPathCollectionLookupHit(b *testing.B) {
	e := newReadPathEnv(b)
	c, keys := benchCollection(b, e, 4096)
	cc, err := sobj.OpenCollection(copyOnly{e.mem}, c.OID())
	if err != nil {
		b.Fatal(err)
	}
	for name, coll := range map[string]*sobj.Collection{"slice": c, "copy": cc} {
		b.Run(name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := coll.Lookup(keys[i%len(keys)]); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkReadPathCollectionLookupMiss(b *testing.B) {
	e := newReadPathEnv(b)
	c, _ := benchCollection(b, e, 4096)
	cc, err := sobj.OpenCollection(copyOnly{e.mem}, c.OID())
	if err != nil {
		b.Fatal(err)
	}
	miss := []byte("no-such-component")
	for name, coll := range map[string]*sobj.Collection{"slice": c, "copy": cc} {
		b.Run(name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := coll.Lookup(miss); err == nil {
					b.Fatal("expected miss")
				}
			}
		})
	}
}

func benchMFile(b *testing.B, e *readPathEnv, size uint64) *sobj.MFile {
	b.Helper()
	m, err := sobj.CreateMFile(e.mem, e.bd, 0644, sobj.DefaultExtentLog)
	if err != nil {
		b.Fatal(err)
	}
	bs, err := m.BlockSize()
	if err != nil {
		b.Fatal(err)
	}
	for blk := uint64(0); blk < size/bs; blk++ {
		ext, err := e.bd.Alloc(bs)
		if err != nil {
			b.Fatal(err)
		}
		if err := m.AttachExtent(e.bd, blk, ext); err != nil {
			b.Fatal(err)
		}
	}
	payload := make([]byte, size)
	rand.New(rand.NewSource(1)).Read(payload)
	if _, err := m.WriteAt(payload, 0); err != nil {
		b.Fatal(err)
	}
	if err := m.SetSize(size); err != nil {
		b.Fatal(err)
	}
	return m
}

func BenchmarkReadPathMFileReadAtSeq(b *testing.B) {
	const size = 1 << 20
	e := newReadPathEnv(b)
	m := benchMFile(b, e, size)
	mc, err := sobj.OpenMFile(copyOnly{e.mem}, m.OID())
	if err != nil {
		b.Fatal(err)
	}
	buf := make([]byte, 4096)
	for name, mf := range map[string]*sobj.MFile{"slice": m, "copy": mc} {
		b.Run(name, func(b *testing.B) {
			b.ReportAllocs()
			b.SetBytes(int64(len(buf)))
			off := uint64(0)
			for i := 0; i < b.N; i++ {
				if _, err := mf.ReadAt(buf, off); err != nil {
					b.Fatal(err)
				}
				off += uint64(len(buf))
				if off >= size {
					off = 0
				}
			}
		})
	}
}

func BenchmarkReadPathMFileReadAtRand(b *testing.B) {
	const size = 1 << 20
	e := newReadPathEnv(b)
	m := benchMFile(b, e, size)
	mc, err := sobj.OpenMFile(copyOnly{e.mem}, m.OID())
	if err != nil {
		b.Fatal(err)
	}
	buf := make([]byte, 512)
	for name, mf := range map[string]*sobj.MFile{"slice": m, "copy": mc} {
		b.Run(name, func(b *testing.B) {
			rng := rand.New(rand.NewSource(7))
			b.ReportAllocs()
			b.SetBytes(int64(len(buf)))
			for i := 0; i < b.N; i++ {
				off := uint64(rng.Intn(size - len(buf)))
				if _, err := mf.ReadAt(buf, off); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkReadPathPXFSOpenRead(b *testing.B) {
	fs := benchPXFS(b)
	data := make([]byte, 16<<10)
	rand.New(rand.NewSource(3)).Read(data)
	f, err := fs.Create("/bench.dat", 0644)
	if err != nil {
		b.Fatal(err)
	}
	if _, err := f.Write(data); err != nil {
		b.Fatal(err)
	}
	if err := f.Close(); err != nil {
		b.Fatal(err)
	}
	buf := make([]byte, len(data))
	b.ReportAllocs()
	b.SetBytes(int64(len(data)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f, err := fs.Open("/bench.dat", pxfs.O_RDONLY)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := f.Read(buf); err != nil {
			b.Fatal(err)
		}
		if err := f.Close(); err != nil {
			b.Fatal(err)
		}
	}
}
