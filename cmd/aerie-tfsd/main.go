// Command aerie-tfsd runs a standalone Aerie machine and serves its trusted
// file-system service (and lock service) over loopback TCP — the paper's
// deployment shape, where the TFS is a user-mode process that clients reach
// via RPC (§5.1).
//
// Note that out-of-process clients would also need to share the SCM arena
// itself; in this reproduction the arena lives in the server process, so
// aerie-tfsd is primarily a demonstration of the RPC surface and a target
// for protocol-level tooling.
//
// -shards N partitions the trusted service N ways on new volumes (existing
// volumes keep the count recorded in their partition table); the SIGUSR1
// stats dump then includes a per-shard accounting table alongside the
// per-shard tfs.shard.<i>.* counters.
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"

	"github.com/aerie-fs/aerie/internal/core"
	"github.com/aerie-fs/aerie/internal/costmodel"
	"github.com/aerie-fs/aerie/internal/obs"
	"github.com/aerie-fs/aerie/internal/tfs"
)

// tenantFlags collects repeatable -tenant id:weight[:quota-mb] policy flags
// into the boot-time tenant map.
type tenantFlags map[uint32]tfs.TenantConfig

func (t tenantFlags) String() string { return fmt.Sprintf("%d tenant(s)", len(t)) }

func (t tenantFlags) Set(v string) error {
	parts := strings.Split(v, ":")
	if len(parts) < 2 || len(parts) > 3 {
		return fmt.Errorf("want id:weight[:quota-mb], got %q", v)
	}
	var id, weight uint32
	if _, err := fmt.Sscanf(parts[0], "%d", &id); err != nil {
		return fmt.Errorf("tenant id %q: %v", parts[0], err)
	}
	if _, err := fmt.Sscanf(parts[1], "%d", &weight); err != nil {
		return fmt.Errorf("weight %q: %v", parts[1], err)
	}
	cfg := tfs.TenantConfig{Weight: weight}
	if len(parts) == 3 {
		var mb uint64
		if _, err := fmt.Sscanf(parts[2], "%d", &mb); err != nil {
			return fmt.Errorf("quota-mb %q: %v", parts[2], err)
		}
		cfg.QuotaBytes = mb << 20
	}
	t[id] = cfg
	return nil
}

func main() {
	tenants := tenantFlags{}
	var (
		addr   = flag.String("listen", "127.0.0.1:7368", "TCP listen address")
		arena  = flag.Uint64("arena-mb", 256, "SCM arena size in MiB (new volumes)")
		volume = flag.String("volume", "", "mmap-backed volume file; created if missing, recovered if present")
		shards = flag.Int("shards", 1, "trusted-service shards for new volumes (existing volumes keep their count)")
	)
	flag.Var(tenants, "tenant", "tenant policy id:weight[:quota-mb] (repeatable); weights drive the fair scheduler, quotas bound space")
	flag.Parse()

	sink := obs.New()
	logf := func(format string, args ...any) {
		fmt.Fprintf(os.Stderr, "aerie-tfsd: "+format+"\n", args...)
	}
	var sys *core.System
	var err error
	if *volume != "" {
		if _, statErr := os.Stat(*volume); statErr == nil {
			// Existing volume: open it and recover. Never degrades.
			sys, err = core.Open(*volume, core.Options{
				Costs:   costmodel.DefaultCosts(),
				Obs:     sink,
				Logf:    logf,
				Tenants: tenants,
			})
			if err == nil {
				if sys.Vol.WasDirty() {
					fmt.Printf("aerie-tfsd: %s was not cleanly closed; journal replayed (generation %d)\n",
						*volume, sys.Vol.Generation())
				} else {
					fmt.Printf("aerie-tfsd: %s opened clean (generation %d)\n", *volume, sys.Vol.Generation())
				}
				// Shard count lives in the partition table; the flag only
				// sizes new volumes.
				if got := sys.Set.Shards(); *shards != 1 && got != *shards {
					fmt.Printf("aerie-tfsd: volume has %d shard(s); ignoring -shards %d\n", got, *shards)
				}
			}
		} else {
			sys, err = core.New(core.Options{
				ArenaSize:  *arena << 20,
				VolumePath: *volume,
				Shards:     *shards,
				Costs:      costmodel.DefaultCosts(),
				Obs:        sink,
				Logf:       logf,
				Tenants:    tenants,
			})
			if err == nil {
				if derr := sys.Degraded(); derr != nil {
					fmt.Fprintf(os.Stderr, "aerie-tfsd: WARNING: running volatile, data will not survive exit: %v\n", derr)
				} else {
					fmt.Printf("aerie-tfsd: created volume %s\n", *volume)
				}
			}
		}
	} else {
		sys, err = core.New(core.Options{
			ArenaSize: *arena << 20,
			Shards:    *shards,
			Costs:     costmodel.DefaultCosts(),
			Obs:       sink,
			Logf:      logf,
			Tenants:   tenants,
		})
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "boot: %v\n", err)
		os.Exit(1)
	}
	ln, err := sys.ListenTCP(*addr)
	if err != nil {
		fmt.Fprintf(os.Stderr, "listen: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("aerie-tfsd: %d MiB volume, %d shard(s), root %v, serving on %s\n",
		*arena, sys.Set.Shards(), sys.TFS.Root(), ln.Addr())
	fmt.Printf("free space: %d bytes\n", sys.TFS.FreeBytes())
	fmt.Println("SIGUSR1 dumps per-layer stats; SIGINT exits (with a final dump)")

	dump := func() {
		_ = sink.Snapshot().WriteText(os.Stdout)
		dumpShards(sys)
		dumpTenants(sys)
	}
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGUSR1)
	for s := range sig {
		if s == syscall.SIGUSR1 {
			fmt.Println("---- stats ----")
			dump()
			continue
		}
		break
	}
	fmt.Println("\nshutting down; final stats:")
	dump()
	_ = ln.Close()
	// Clean close: msync everything and clear the volume's dirty flag, so
	// the next -volume start skips recovery. A kill -9 lands here never —
	// which is the point: the dirty flag stays set and Open recovers.
	if err := sys.Close(); err != nil {
		fmt.Fprintf(os.Stderr, "aerie-tfsd: close: %v\n", err)
		os.Exit(1)
	}
}

// dumpShards prints one accounting row per trusted-service shard: its
// partition's share of the heap, what it has applied, and how many of the
// namespace's objects it owns. On a 1-shard volume the table is a single
// row identical to the aggregate, so it is skipped.
func dumpShards(sys *core.System) {
	if sys.Set.Shards() <= 1 {
		return
	}
	rep, err := sys.Set.Statfs()
	if err != nil {
		fmt.Fprintf(os.Stderr, "aerie-tfsd: shard statfs: %v\n", err)
		return
	}
	fmt.Println("---- shards ----")
	fmt.Printf("%-6s %12s %12s %12s %10s %8s\n", "shard", "total", "free", "reserved", "batches", "objects")
	for i, s := range rep.Shards {
		fmt.Printf("%-6d %12d %12d %12d %10d %8d\n",
			i, s.TotalBytes, s.FreeBytes, s.ReservedBytes, s.BatchesApplied, s.Objects)
	}
}

// dumpTenants prints one accounting row per (tenant, shard): the policy
// (weight, quota) and the live charge against it, plus the shed and
// quota-reject counters the isolation machinery maintains. Skipped when no
// tenant has declared policy or touched the volume.
func dumpTenants(sys *core.System) {
	rows := sys.Set.TenantStat()
	if len(rows) == 0 {
		return
	}
	fmt.Println("---- tenants ----")
	fmt.Printf("%-7s %-6s %-7s %12s %12s %12s %8s %8s\n",
		"tenant", "shard", "weight", "quota", "used", "reserved", "sheds", "rejects")
	for _, r := range rows {
		quota := "-"
		if r.QuotaBytes > 0 {
			quota = fmt.Sprintf("%d", r.QuotaBytes)
		}
		fmt.Printf("%-7d %-6d %-7d %12s %12d %12d %8d %8d\n",
			r.Tenant, r.Shard, r.Weight, quota, r.UsedBytes, r.ReservedBytes, r.Sheds, r.QuotaRejects)
	}
}
