// Command aerie-bench regenerates the tables and figures of the Aerie paper
// (Volos et al., EuroSys 2014) on the Go reproduction. Each experiment
// prints the same rows/series the paper reports; EXPERIMENTS.md records a
// calibrated run side by side with the paper's numbers.
//
// Usage:
//
//	aerie-bench -experiment all                 # everything (slow)
//	aerie-bench -experiment table1 -scale 0.1   # one experiment, bigger working set
//	aerie-bench -breakdown                      # per-layer latency attribution
//	aerie-bench -breakdown -json                # same, machine-readable
//
// Experiments: fig1, table1, table2, table3, fig5, fig6, shardscale,
// mprotect, batchsweep, breakdown, all.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/debug"
	"time"

	"github.com/aerie-fs/aerie/internal/costmodel"
	"github.com/aerie-fs/aerie/internal/experiments"
)

func main() {
	var (
		exp       = flag.String("experiment", "all", "which experiment to run (fig1|table1|table2|table3|fig5|fig6|shardscale|mprotect|batchsweep|breakdown|all)")
		scale     = flag.Float64("scale", 0.05, "working-set scale relative to the paper (1.0 = full size)")
		iters     = flag.Int("iters", 0, "iterations per measurement (0 = per-experiment default)")
		nocal     = flag.Bool("no-costs", false, "disable injected hardware cost calibration")
		breakdown = flag.Bool("breakdown", false, "run the per-layer latency breakdown (shorthand for -experiment breakdown)")
		asJSON    = flag.Bool("json", false, "with -breakdown, emit deterministic JSON instead of text")
	)
	flag.Parse()

	cfg := experiments.Config{
		Scale:      *scale,
		Iterations: *iters,
		Costs:      costmodel.DefaultCosts(),
		Out:        os.Stdout,
	}
	if *nocal {
		cfg.Costs = costmodel.Costs{}
	}

	if *breakdown {
		fn := experiments.Breakdown
		if *asJSON {
			fn = experiments.BreakdownJSON
		}
		if err := fn(cfg); err != nil {
			fmt.Fprintf(os.Stderr, "breakdown failed: %v\n", err)
			os.Exit(1)
		}
		return
	}

	all := map[string]func(experiments.Config) error{
		"fig1":       experiments.Figure1,
		"table1":     experiments.Table1,
		"table2":     experiments.Table2,
		"table3":     experiments.Table3,
		"fig5":       experiments.Figure5,
		"fig6":       experiments.Figure6,
		"shardscale": experiments.ShardScale,
		"mprotect":   experiments.MProtect,
		"batchsweep": experiments.BatchSweep,
		"breakdown":  experiments.Breakdown,
	}
	order := []string{"fig1", "table1", "table2", "table3", "fig5", "fig6", "shardscale", "mprotect", "batchsweep", "breakdown"}

	run := func(name string) {
		fn, ok := all[name]
		if !ok {
			fmt.Fprintf(os.Stderr, "unknown experiment %q\n", name)
			os.Exit(2)
		}
		fmt.Printf("==== %s ====\n", name)
		start := time.Now()
		if err := fn(cfg); err != nil {
			fmt.Fprintf(os.Stderr, "%s failed: %v\n", name, err)
			os.Exit(1)
		}
		fmt.Printf("(%s took %v)\n\n", name, time.Since(start).Round(time.Millisecond))
		// Return the previous experiment's arenas to the OS so heap
		// ballast does not distort the next experiment's timings.
		runtime.GC()
		debug.FreeOSMemory()
	}

	if *exp == "all" {
		for _, name := range order {
			run(name)
		}
		return
	}
	run(*exp)
}
