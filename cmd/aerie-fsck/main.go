// Command aerie-fsck checks an Aerie volume. With -volume it opens an
// mmap-backed volume file offline — replaying its journal if the previous
// writer died — and runs the mark-and-sweep check against the real on-disk
// state, repairing leaked storage when asked. Without -volume it runs the
// original demonstration: build an in-memory volume, exercise it (creates,
// deletes, a client that dies with staged state), simulate a power failure,
// recover, and check.
package main

import (
	"flag"
	"fmt"
	"os"

	"github.com/aerie-fs/aerie/internal/core"
	"github.com/aerie-fs/aerie/internal/libfs"
	"github.com/aerie-fs/aerie/internal/pxfs"
)

func main() {
	repair := flag.Bool("repair", true, "free leaked blocks")
	volume := flag.String("volume", "", "check this volume file offline instead of running the demo")
	flag.Parse()

	if *volume != "" {
		os.Exit(checkVolume(*volume, *repair))
	}

	sys, err := core.New(core.Options{ArenaSize: 64 << 20, TrackPersistence: true})
	if err != nil {
		fatal(err)
	}
	// Healthy activity.
	sess, err := sys.NewSession(libfs.Config{UID: 1000})
	if err != nil {
		fatal(err)
	}
	fs := pxfs.New(sess, pxfs.Options{NameCache: true})
	for i := 0; i < 50; i++ {
		f, err := fs.Create(fmt.Sprintf("/file-%02d", i), 0644)
		if err != nil {
			fatal(err)
		}
		if _, err := f.Write(make([]byte, 8192)); err != nil {
			fatal(err)
		}
		_ = f.Close()
	}
	if err := fs.Sync(); err != nil {
		fatal(err)
	}
	for i := 0; i < 25; i++ {
		if err := fs.Unlink(fmt.Sprintf("/file-%02d", i)); err != nil {
			fatal(err)
		}
	}
	if err := fs.Sync(); err != nil {
		fatal(err)
	}
	// A client that dies with pre-allocated extents outstanding.
	dead, err := sys.NewSession(libfs.Config{UID: 1001})
	if err != nil {
		fatal(err)
	}
	if _, err := dead.AllocStaged(4096); err != nil {
		fatal(err)
	}
	dead.Abandon()

	fmt.Println("simulating power failure...")
	if err := sys.CrashAndRecover(); err != nil {
		fatal(err)
	}
	rep, err := sys.TFS.Fsck(*repair)
	if err != nil {
		fatal(err)
	}
	fmt.Println(rep)
	if rep.LeakedBlocks == rep.RepairedBlocks {
		fmt.Println("volume clean")
	} else {
		fmt.Println("leaks remain (run with -repair)")
		os.Exit(1)
	}
}

// checkVolume opens path offline, reports how the last writer left it,
// checks it, and closes it cleanly (clearing the dirty flag) on success.
// Exit status: 0 clean, 1 unusable or leaks remain.
func checkVolume(path string, repair bool) int {
	sys, err := core.Open(path, core.Options{
		Logf: func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, "aerie-fsck: "+format+"\n", args...)
		},
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "aerie-fsck: %s: %v\n", path, err)
		return 1
	}
	if sys.Vol.WasDirty() {
		fmt.Printf("%s: dirty (previous writer died); journal replayed, generation %d\n",
			path, sys.Vol.Generation())
	} else {
		fmt.Printf("%s: cleanly closed, generation %d\n", path, sys.Vol.Generation())
	}
	rep, err := sys.TFS.Fsck(repair)
	if err != nil {
		fmt.Fprintf(os.Stderr, "aerie-fsck: %v\n", err)
		return 1
	}
	fmt.Println(rep)
	clean := rep.LeakedBlocks == rep.RepairedBlocks && rep.LostBlocks == 0
	if err := sys.Close(); err != nil {
		fmt.Fprintf(os.Stderr, "aerie-fsck: close: %v\n", err)
		return 1
	}
	if !clean {
		fmt.Println("volume NOT clean (leaks remain: run with -repair; lost blocks need manual attention)")
		return 1
	}
	fmt.Println("volume clean")
	return 0
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "aerie-fsck:", err)
	os.Exit(1)
}
