// Command aerie-fsck demonstrates the offline volume checker: it builds a
// volume, exercises it (creates, deletes, a client that dies with staged
// state), simulates a power failure, recovers, and runs the mark-and-sweep
// check — reporting and optionally repairing leaked storage.
package main

import (
	"flag"
	"fmt"
	"os"

	"github.com/aerie-fs/aerie/internal/core"
	"github.com/aerie-fs/aerie/internal/libfs"
	"github.com/aerie-fs/aerie/internal/pxfs"
)

func main() {
	repair := flag.Bool("repair", true, "free leaked blocks")
	flag.Parse()

	sys, err := core.New(core.Options{ArenaSize: 64 << 20, TrackPersistence: true})
	if err != nil {
		fatal(err)
	}
	// Healthy activity.
	sess, err := sys.NewSession(libfs.Config{UID: 1000})
	if err != nil {
		fatal(err)
	}
	fs := pxfs.New(sess, pxfs.Options{NameCache: true})
	for i := 0; i < 50; i++ {
		f, err := fs.Create(fmt.Sprintf("/file-%02d", i), 0644)
		if err != nil {
			fatal(err)
		}
		if _, err := f.Write(make([]byte, 8192)); err != nil {
			fatal(err)
		}
		_ = f.Close()
	}
	if err := fs.Sync(); err != nil {
		fatal(err)
	}
	for i := 0; i < 25; i++ {
		if err := fs.Unlink(fmt.Sprintf("/file-%02d", i)); err != nil {
			fatal(err)
		}
	}
	if err := fs.Sync(); err != nil {
		fatal(err)
	}
	// A client that dies with pre-allocated extents outstanding.
	dead, err := sys.NewSession(libfs.Config{UID: 1001})
	if err != nil {
		fatal(err)
	}
	if _, err := dead.AllocStaged(4096); err != nil {
		fatal(err)
	}
	dead.Abandon()

	fmt.Println("simulating power failure...")
	if err := sys.CrashAndRecover(); err != nil {
		fatal(err)
	}
	rep, err := sys.TFS.Fsck(*repair)
	if err != nil {
		fatal(err)
	}
	fmt.Println(rep)
	if rep.LeakedBlocks == rep.RepairedBlocks {
		fmt.Println("volume clean")
	} else {
		fmt.Println("leaks remain (run with -repair)")
		os.Exit(1)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "aerie-fsck:", err)
	os.Exit(1)
}
