// Command aerie-shell is an interactive shell over a fresh Aerie machine,
// exposing both file-system interfaces on the same volume: POSIX-style
// commands (ls, cat, write, mkdir, rm, mv, stat, chmod) go through PXFS,
// and key-value commands (put, get, erase, keys) go through FlatFS —
// demonstrating §6.2's one-layout-two-interfaces design interactively.
// With -shards N the trusted service is partitioned N ways; df then adds a
// per-shard accounting row and stats carries tfs.shard.<i>.* counters.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	aerie "github.com/aerie-fs/aerie"
)

func main() {
	shards := flag.Int("shards", 1, "trusted-service shards (df and stats then show per-shard rows)")
	tenant := flag.Uint("tenant", 0, "mount the session as this tenant; its writes charge the tenant's quota")
	flag.Parse()
	sink := aerie.NewObs()
	sys, err := aerie.New(aerie.Options{ArenaSize: 256 << 20, Shards: *shards, Obs: sink})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	sess, err := sys.NewSession(aerie.SessionConfig{UID: 1000, Tenant: uint32(*tenant)})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	px := aerie.PXFSOn(sess, aerie.PXFSOptions{NameCache: true})
	flat := aerie.FlatFSOn(sess, aerie.FlatFSOptions{})

	fmt.Println("aerie-shell — 'help' for commands, 'quit' to exit")
	sc := bufio.NewScanner(os.Stdin)
	for {
		fmt.Print("aerie> ")
		if !sc.Scan() {
			break
		}
		fields := strings.Fields(sc.Text())
		if len(fields) == 0 {
			continue
		}
		cmd, args := fields[0], fields[1:]
		if cmd == "quit" || cmd == "exit" {
			break
		}
		if err := dispatch(px, flat, sess, sink, cmd, args); err != nil {
			fmt.Println("error:", err)
		}
	}
	_ = sess.Close()
}

func dispatch(px *aerie.PXFS, flat *aerie.FlatFS, sess *aerie.Session, sink *aerie.ObsSink, cmd string, args []string) error {
	need := func(n int) error {
		if len(args) < n {
			return fmt.Errorf("%s needs %d argument(s)", cmd, n)
		}
		return nil
	}
	switch cmd {
	case "help":
		fmt.Print(`POSIX (PXFS):  ls [dir] | cat <file> | write <file> <text...> | append <file> <text...>
               mkdir <dir> | rm <file> | rmdir <dir> | mv <src> <dst> | stat <path> | chmod <octal> <path>
Key/value (FlatFS): put <key> <text...> | get <key> | erase <key> | keys
Tenancy:       tenant set <id> <weight> [quota-mb] | tenant ls
Other:         df | sync | stats [reset] | help | quit
`)
		return nil
	case "ls":
		dir := "/"
		if len(args) > 0 {
			dir = args[0]
		}
		ents, err := px.ReadDir(dir)
		if err != nil {
			return err
		}
		for _, e := range ents {
			kind := "f"
			if e.IsDir {
				kind = "d"
			}
			fmt.Printf("%s %s\n", kind, e.Name)
		}
		return nil
	case "cat":
		if err := need(1); err != nil {
			return err
		}
		f, err := px.Open(args[0], aerie.O_RDONLY)
		if err != nil {
			return err
		}
		defer f.Close()
		buf := make([]byte, 4096)
		for {
			n, err := f.Read(buf)
			os.Stdout.Write(buf[:n])
			if err == io.EOF {
				break
			}
			if err != nil {
				return err
			}
		}
		fmt.Println()
		return nil
	case "write", "append":
		if err := need(2); err != nil {
			return err
		}
		flags := aerie.O_RDWR | aerie.O_CREATE | aerie.O_TRUNC
		if cmd == "append" {
			flags = aerie.O_RDWR | aerie.O_CREATE | aerie.O_APPEND
		}
		f, err := px.OpenFile(args[0], flags, 0644)
		if err != nil {
			return err
		}
		defer f.Close()
		_, err = f.Write([]byte(strings.Join(args[1:], " ") + "\n"))
		return err
	case "mkdir":
		if err := need(1); err != nil {
			return err
		}
		return px.Mkdir(args[0], 0755)
	case "rm":
		if err := need(1); err != nil {
			return err
		}
		return px.Unlink(args[0])
	case "rmdir":
		if err := need(1); err != nil {
			return err
		}
		return px.Rmdir(args[0])
	case "mv":
		if err := need(2); err != nil {
			return err
		}
		return px.Rename(args[0], args[1])
	case "stat":
		if err := need(1); err != nil {
			return err
		}
		fi, err := px.Stat(args[0])
		if err != nil {
			return err
		}
		fmt.Printf("%s: size=%d mode=%o dir=%v links=%d oid=%v\n",
			fi.Name, fi.Size, fi.Mode, fi.IsDir, fi.Links, fi.OID)
		return nil
	case "chmod":
		if err := need(2); err != nil {
			return err
		}
		var mode uint32
		if _, err := fmt.Sscanf(args[0], "%o", &mode); err != nil {
			return err
		}
		return px.Chmod(args[1], mode, false)
	case "put":
		if err := need(2); err != nil {
			return err
		}
		return flat.Put(args[0], []byte(strings.Join(args[1:], " ")))
	case "get":
		if err := need(1); err != nil {
			return err
		}
		v, err := flat.Get(args[0])
		if err != nil {
			return err
		}
		fmt.Println(string(v))
		return nil
	case "erase":
		if err := need(1); err != nil {
			return err
		}
		return flat.Erase(args[0])
	case "keys":
		keys, err := flat.Keys()
		if err != nil {
			return err
		}
		for _, k := range keys {
			fmt.Println(k)
		}
		return nil
	case "df":
		st, err := px.Statfs()
		if err != nil {
			return err
		}
		used := st.TotalBytes - st.FreeBytes - st.ReservedBytes
		fmt.Printf("total %d  used %d  free %d  reserved %d  objects %d  batches %d\n",
			st.TotalBytes, used, st.FreeBytes, st.ReservedBytes, st.Objects, st.BatchesApplied)
		// On a sharded volume the aggregate above hides placement; one row
		// per shard shows which partitions the namespace actually landed in.
		for i, sh := range st.Shards {
			shUsed := sh.TotalBytes - sh.FreeBytes - sh.ReservedBytes
			fmt.Printf("shard %d: total %d  used %d  free %d  reserved %d  objects %d  batches %d\n",
				i, sh.TotalBytes, shUsed, sh.FreeBytes, sh.ReservedBytes, sh.Objects, sh.BatchesApplied)
		}
		// Per-tenant df: any tenant with policy or live usage gets its
		// charge-against-quota rows alongside the volume's totals.
		rows, err := sess.TenantStat()
		if err != nil {
			return err
		}
		if len(rows) > 0 {
			printTenantRows(rows)
		}
		return nil
	case "tenant":
		if len(args) == 0 {
			return fmt.Errorf("tenant needs a subcommand: set <id> <weight> [quota-mb] | ls")
		}
		switch args[0] {
		case "set":
			if len(args) < 3 {
				return fmt.Errorf("tenant set <id> <weight> [quota-mb]")
			}
			var id, weight uint32
			if _, err := fmt.Sscanf(args[1], "%d", &id); err != nil {
				return fmt.Errorf("tenant id %q: %v", args[1], err)
			}
			if _, err := fmt.Sscanf(args[2], "%d", &weight); err != nil {
				return fmt.Errorf("weight %q: %v", args[2], err)
			}
			var quota uint64
			if len(args) > 3 {
				if _, err := fmt.Sscanf(args[3], "%d", &quota); err != nil {
					return fmt.Errorf("quota-mb %q: %v", args[3], err)
				}
				quota <<= 20
			}
			return sess.TenantCtl(id, weight, quota)
		case "ls":
			rows, err := sess.TenantStat()
			if err != nil {
				return err
			}
			if len(rows) == 0 {
				fmt.Println("no tenants configured or active")
				return nil
			}
			printTenantRows(rows)
			return nil
		}
		return fmt.Errorf("unknown tenant subcommand %q", args[0])
	case "sync":
		return px.Sync()
	case "stats":
		if len(args) > 0 && args[0] == "reset" {
			sink.Reset()
			fmt.Println("stats reset")
			return nil
		}
		return sink.Snapshot().WriteText(os.Stdout)
	}
	return fmt.Errorf("unknown command %q (try help)", cmd)
}

// printTenantRows renders per-tenant, per-shard accounting: the policy
// (weight, quota) and the live charge against it (used, reserved), plus the
// isolation counters that explain slow or rejected batches.
func printTenantRows(rows []aerie.TenantUsage) {
	fmt.Printf("%-7s %-6s %-7s %12s %12s %12s %8s %8s\n",
		"tenant", "shard", "weight", "quota", "used", "reserved", "sheds", "rejects")
	for _, r := range rows {
		quota := "-"
		if r.QuotaBytes > 0 {
			quota = fmt.Sprintf("%d", r.QuotaBytes)
		}
		fmt.Printf("%-7d %-6d %-7d %12s %12d %12d %8d %8d\n",
			r.Tenant, r.Shard, r.Weight, quota, r.UsedBytes, r.ReservedBytes, r.Sheds, r.QuotaRejects)
	}
}
