module github.com/aerie-fs/aerie

go 1.22
